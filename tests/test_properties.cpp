// Property-based suites (parameterized gtest): invariants swept over
// parameter grids rather than spot-checked.

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "core/availability.hpp"
#include "core/component_dist.hpp"
#include "core/optimize.hpp"
#include "net/builders.hpp"
#include "quorum/quorum_spec.hpp"
#include "sim/simulator.hpp"

namespace quora {
namespace {

// ---------------------------------------------------------------- densities

using DensityParam = std::tuple<std::uint32_t, double, double>;  // n, p, r

class AnalyticDensity : public ::testing::TestWithParam<DensityParam> {};

TEST_P(AnalyticDensity, RingIsValidAndMassCapsAtN) {
  const auto [n, p, r] = GetParam();
  const core::VotePdf pdf = core::ring_site_pdf(n, p, r);
  EXPECT_TRUE(core::is_valid_pdf(pdf, 1e-9)) << core::pdf_total(pdf);
  EXPECT_NEAR(pdf[0], 1.0 - p, 1e-12);
  EXPECT_LE(core::pdf_mean(pdf), static_cast<double>(n));
}

TEST_P(AnalyticDensity, FullyConnectedIsValidAndDominatesRingInMean) {
  const auto [n, p, r] = GetParam();
  const core::VotePdf ring = core::ring_site_pdf(n, p, r);
  const core::VotePdf complete = core::fully_connected_site_pdf(n, p, r);
  EXPECT_TRUE(core::is_valid_pdf(complete, 1e-9)) << core::pdf_total(complete);
  // More links can only enlarge the component a site sees, on average.
  EXPECT_GE(core::pdf_mean(complete) + 1e-9, core::pdf_mean(ring));
}

TEST_P(AnalyticDensity, BusArchitecturesOrdered) {
  const auto [n, p, r] = GetParam();
  const core::VotePdf die =
      core::bus_site_pdf(n, p, r, core::BusArchitecture::kSitesDieWithBus);
  const core::VotePdf survive =
      core::bus_site_pdf(n, p, r, core::BusArchitecture::kSitesSurviveBus);
  EXPECT_TRUE(core::is_valid_pdf(die, 1e-9));
  EXPECT_TRUE(core::is_valid_pdf(survive, 1e-9));
  // Surviving sites strictly reduce the zero-vote mass when the bus can
  // fail (r < 1) and sites can be up (p > 0).
  if (r < 1.0 && p > 0.0) {
    EXPECT_LT(survive[0], die[0]);
  }
  // Above v=1 the two architectures agree exactly.
  for (std::uint32_t v = 2; v <= n; ++v) {
    EXPECT_NEAR(die[v], survive[v], 1e-12) << "v=" << v;
  }
}

std::string density_param_name(const ::testing::TestParamInfo<DensityParam>& info) {
  return "n" + std::to_string(std::get<0>(info.param)) + "_p" +
         std::to_string(static_cast<int>(std::get<1>(info.param) * 100)) + "_r" +
         std::to_string(static_cast<int>(std::get<2>(info.param) * 100));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, AnalyticDensity,
    ::testing::Combine(::testing::Values(3u, 8u, 25u, 101u),
                       ::testing::Values(0.5, 0.9, 0.96, 1.0),
                       ::testing::Values(0.5, 0.9, 0.96, 1.0)),
    density_param_name);

// ------------------------------------------------------------- assignments

class CanonicalAssignments : public ::testing::TestWithParam<net::Vote> {};

TEST_P(CanonicalAssignments, WholeFamilyIsValidAndCoversTheRange) {
  const net::Vote total = GetParam();
  for (net::Vote q = 1; q <= quorum::max_read_quorum(total); ++q) {
    const quorum::QuorumSpec spec = quorum::from_read_quorum(total, q);
    EXPECT_TRUE(spec.valid(total)) << "T=" << total << " q=" << q;
    EXPECT_EQ(spec.q_r + spec.q_w, total + 1);
  }
  EXPECT_TRUE(quorum::majority(total).valid(total));
  EXPECT_TRUE(quorum::read_one_write_all(total).valid(total));
}

INSTANTIATE_TEST_SUITE_P(TotalsSweep, CanonicalAssignments,
                         ::testing::Values(2u, 3u, 4u, 5u, 7u, 10u, 11u, 16u,
                                           31u, 100u, 101u));

// ------------------------------------------------------------- optimizers

class OptimizerSweep : public ::testing::TestWithParam<double> {};

TEST_P(OptimizerSweep, FastSearchesNeverBeatNorBadlyTrailExhaustive) {
  const double alpha = GetParam();
  for (const std::uint32_t n : {11u, 31u, 101u}) {
    const core::AvailabilityCurve curve(core::ring_site_pdf(n, 0.96, 0.96));
    const auto exh = core::optimize_exhaustive(curve, alpha);
    const auto gold = core::optimize_golden(curve, alpha);
    const auto brent = core::optimize_brent(curve, alpha);
    // Sound: never report a value above the true optimum.
    EXPECT_LE(gold.value, exh.value + 1e-15);
    EXPECT_LE(brent.value, exh.value + 1e-15);
    // Never below the better endpoint (both probe the extremes first).
    const double endpoints = std::max(curve.availability(alpha, 1),
                                      curve.availability(alpha, n / 2));
    EXPECT_GE(gold.value + 1e-15, endpoints);
    EXPECT_GE(brent.value + 1e-15, endpoints);
    // On the paper's unimodal-ish analytic ring curves: exact agreement.
    EXPECT_NEAR(gold.value, exh.value, 1e-9) << "n=" << n << " alpha=" << alpha;
    EXPECT_NEAR(brent.value, exh.value, 1e-9) << "n=" << n << " alpha=" << alpha;
  }
}

TEST_P(OptimizerSweep, WriteConstraintBindsExactlyWhenItShould) {
  const double alpha = GetParam();
  const core::AvailabilityCurve curve(
      core::fully_connected_site_pdf(31, 0.96, 0.96));
  const auto unconstrained = core::optimize_exhaustive(curve, alpha);
  const double w_at_opt = curve.write_availability(unconstrained.q_r());

  // A floor below the optimum's own write availability changes nothing.
  const auto loose = core::optimize_write_constrained(curve, alpha, w_at_opt / 2);
  ASSERT_TRUE(loose.has_value());
  EXPECT_NEAR(loose->value, unconstrained.value, 1e-15);

  // A floor just above it forces a strictly different (or equal-value
  // plateau) assignment with write availability meeting the floor.
  const double tighter = std::min(w_at_opt + 0.05, 0.95);
  const auto tight = core::optimize_write_constrained(curve, alpha, tighter);
  if (tight) {
    EXPECT_GE(curve.write_availability(tight->q_r()), tighter);
    EXPECT_LE(tight->value, unconstrained.value + 1e-15);
  }
}

INSTANTIATE_TEST_SUITE_P(AlphaSweep, OptimizerSweep,
                         ::testing::Values(0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0));

// ------------------------------------------------------------ determinism

class SeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SeedSweep, SimulationIsAPureFunctionOfSeedAndStream) {
  const std::uint64_t seed = GetParam();
  const net::Topology topo = net::make_ring_with_chords(17, 2);
  const auto signature = [&](std::uint64_t stream) {
    sim::Simulator sim(topo, sim::SimConfig{}, sim::AccessSpec{}, seed, stream);
    sim.run_accesses(4'000);
    return std::tuple{sim.now(), sim.counters().site_failures,
                      sim.counters().link_failures};
  };
  EXPECT_EQ(signature(0), signature(0));
  EXPECT_EQ(signature(3), signature(3));
  EXPECT_NE(signature(0), signature(3));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep,
                         ::testing::Values(1u, 42u, 1337u, 0xDEADBEEFu));

// ----------------------------------------------------- topology invariants

class TopologySweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(TopologySweep, RingChordFamilyInvariants) {
  const std::uint32_t chords = GetParam();
  const net::Topology topo = net::make_ring_with_chords(101, chords);
  EXPECT_EQ(topo.link_count(), 101u + chords);

  // All-up network is connected: a single component holding all votes.
  conn::LiveNetwork live(topo);
  const conn::ComponentTracker tracker(live);
  EXPECT_EQ(tracker.component_count(), 1u);
  EXPECT_EQ(tracker.component_votes(0), 101u);

  // Chord degrees are near-uniform: the spread placement never loads one
  // site with more than a proportional share of chords.
  std::uint32_t max_degree = 0;
  for (net::SiteId s = 0; s < topo.site_count(); ++s) {
    max_degree = std::max(max_degree, topo.degree(s));
  }
  const std::uint32_t chord_avg = 2 + 2 * chords / 101;
  EXPECT_LE(max_degree, chord_avg + 3) << "chords=" << chords;
}

INSTANTIATE_TEST_SUITE_P(PaperFamily, TopologySweep,
                         ::testing::Values(0u, 1u, 2u, 4u, 16u, 256u, 1024u,
                                           4949u));

// --------------------------------------------------- availability algebra

class AvailabilityAlgebra
    : public ::testing::TestWithParam<std::tuple<double, net::Vote>> {};

TEST_P(AvailabilityAlgebra, LinearInAlphaAndBoundedByTails) {
  const auto [alpha, q] = GetParam();
  const core::AvailabilityCurve curve(
      core::fully_connected_site_pdf(25, 0.96, 0.96));
  if (q > curve.max_read_quorum()) GTEST_SKIP();

  // A(alpha, q) interpolates linearly between A(0, q) and A(1, q).
  const double a0 = curve.availability(0.0, q);
  const double a1 = curve.availability(1.0, q);
  EXPECT_NEAR(curve.availability(alpha, q), (1 - alpha) * a0 + alpha * a1, 1e-12);
  // And is always a probability bounded by the easier tail.
  EXPECT_GE(curve.availability(alpha, q), 0.0);
  EXPECT_LE(curve.availability(alpha, q), std::max(a0, a1) + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, AvailabilityAlgebra,
    ::testing::Combine(::testing::Values(0.0, 0.33, 0.5, 0.66, 1.0),
                       ::testing::Values(net::Vote{1}, net::Vote{5},
                                         net::Vote{12})));

} // namespace
} // namespace quora
