// Tests for the batch-means diagnostics (autocorrelation, von Neumann
// ratio, effective sample size).

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "rng/xoshiro256ss.hpp"
#include "stats/diagnostics.hpp"

namespace quora::stats {
namespace {

std::vector<double> iid_series(std::size_t n, std::uint64_t seed) {
  rng::Xoshiro256ss gen(seed);
  std::vector<double> xs(n);
  for (double& x : xs) x = gen.next_double();
  return xs;
}

std::vector<double> ar1_series(std::size_t n, double rho, std::uint64_t seed) {
  rng::Xoshiro256ss gen(seed);
  std::vector<double> xs(n);
  double state = 0.0;
  for (double& x : xs) {
    state = rho * state + (gen.next_double() - 0.5);
    x = state;
  }
  return xs;
}

TEST(Autocorrelation, IidIsNearZero) {
  const auto xs = iid_series(4000, 1);
  EXPECT_NEAR(autocorrelation(xs, 1), 0.0, 0.05);
  EXPECT_NEAR(autocorrelation(xs, 5), 0.0, 0.05);
}

TEST(Autocorrelation, Ar1MatchesItsCoefficient) {
  for (const double rho : {0.3, 0.7, 0.9}) {
    const auto xs = ar1_series(20000, rho, 2);
    EXPECT_NEAR(autocorrelation(xs, 1), rho, 0.05) << "rho=" << rho;
    EXPECT_NEAR(autocorrelation(xs, 2), rho * rho, 0.06) << "rho=" << rho;
  }
}

TEST(Autocorrelation, AlternatingSeriesIsNegative) {
  std::vector<double> xs(100);
  for (std::size_t i = 0; i < xs.size(); ++i) xs[i] = i % 2 ? 1.0 : -1.0;
  EXPECT_NEAR(autocorrelation(xs, 1), -1.0, 0.05);
}

TEST(Autocorrelation, DegenerateInputs) {
  const std::vector<double> constant(10, 3.0);
  EXPECT_EQ(autocorrelation(constant, 1), 0.0);
  const std::vector<double> tiny{1.0};
  EXPECT_EQ(autocorrelation(tiny, 1), 0.0);
  const auto xs = iid_series(10, 3);
  EXPECT_EQ(autocorrelation(xs, 0), 0.0);
  EXPECT_EQ(autocorrelation(xs, 10), 0.0);
}

TEST(VonNeumann, IidIsNearTwo) {
  EXPECT_NEAR(von_neumann_ratio(iid_series(4000, 4)), 2.0, 0.15);
}

TEST(VonNeumann, PositiveCorrelationBelowTwo) {
  EXPECT_LT(von_neumann_ratio(ar1_series(4000, 0.8, 5)), 1.0);
}

TEST(VonNeumann, NegativeCorrelationAboveTwo) {
  std::vector<double> xs(200);
  for (std::size_t i = 0; i < xs.size(); ++i) xs[i] = i % 2 ? 1.0 : -1.0;
  EXPECT_GT(von_neumann_ratio(xs), 3.5);
}

TEST(VonNeumann, DegenerateInputs) {
  EXPECT_EQ(von_neumann_ratio(std::vector<double>{}), 2.0);
  EXPECT_EQ(von_neumann_ratio(std::vector<double>{1.0}), 2.0);
  EXPECT_EQ(von_neumann_ratio(std::vector<double>(5, 7.0)), 2.0);
}

TEST(EffectiveSampleSize, IidKeepsN) {
  const auto xs = iid_series(2000, 6);
  EXPECT_NEAR(effective_sample_size(xs), 2000.0, 2000.0 * 0.1);
}

TEST(EffectiveSampleSize, CorrelationShrinksIt) {
  const auto xs = ar1_series(2000, 0.8, 7);
  // AR(1) with rho = .8: ESS ~ n/9.
  const double ess = effective_sample_size(xs);
  EXPECT_LT(ess, 2000.0 * 0.25);
  EXPECT_GT(ess, 2000.0 * 0.03);
}

TEST(EffectiveSampleSize, NegativeCorrelationClampedToN) {
  std::vector<double> xs(100);
  for (std::size_t i = 0; i < xs.size(); ++i) xs[i] = i % 2 ? 1.0 : -1.0;
  // rho1 < 0 is clamped to 0: we never *inflate* the sample size.
  EXPECT_DOUBLE_EQ(effective_sample_size(xs), 100.0);
}

} // namespace
} // namespace quora::stats
