// Tests for the non-instantaneous access model (TimedProtocolMeter).

#include <gtest/gtest.h>

#include <stdexcept>

#include "metrics/collectors.hpp"
#include "metrics/timed_meter.hpp"
#include "net/builders.hpp"
#include "quorum/protocols.hpp"
#include "sim/simulator.hpp"

namespace quora::metrics {
namespace {

using quorum::QuorumSpec;

TEST(TimedProtocolMeter, RejectsNegativeDuration) {
  EXPECT_THROW(TimedProtocolMeter(QuorumSpec{5, 6}, -1.0), std::invalid_argument);
}

TEST(TimedProtocolMeter, ZeroDurationMatchesInstantaneousMeter) {
  const net::Topology topo = net::make_ring_with_chords(21, 2);
  const QuorumSpec spec = quorum::from_read_quorum(21, 5);
  const quorum::QuorumConsensus engine(topo, spec);

  sim::SimConfig config;
  config.warmup_accesses = 2'000;
  sim::Simulator sim(topo, config, sim::AccessSpec{}, 7);
  sim.run_accesses(config.warmup_accesses);

  ProtocolMeter instantaneous(static_decider(engine));
  TimedProtocolMeter timed(spec, 0.0);
  sim.add_access_observer(&instantaneous);
  sim.add_access_observer(&timed);
  sim.add_network_observer(&timed);
  sim.run_accesses(30'000);
  timed.settle_until(sim.now() + 1.0);

  EXPECT_EQ(timed.completed(), 30'000u);
  EXPECT_EQ(timed.granted(),
            instantaneous.reads_granted() + instantaneous.writes_granted());
  EXPECT_EQ(timed.aborted_by_disturbance(), 0u);
}

TEST(TimedProtocolMeter, AvailabilityDecreasesWithDuration) {
  const net::Topology topo = net::make_ring_with_chords(31, 3);
  const QuorumSpec spec = quorum::from_read_quorum(31, 10);

  double prev = 1.1;
  for (const double d : {0.0, 0.1, 1.0, 8.0}) {
    sim::SimConfig config;
    config.warmup_accesses = 2'000;
    sim::Simulator sim(topo, config, sim::AccessSpec{}, 9);
    sim.run_accesses(config.warmup_accesses);
    TimedProtocolMeter meter(spec, d);
    sim.add_access_observer(&meter);
    sim.add_network_observer(&meter);
    sim.run_accesses(60'000);
    meter.settle_until(sim.now() + 2 * d + 1.0);
    EXPECT_LT(meter.availability(), prev) << "d=" << d;
    prev = meter.availability();
  }
}

TEST(TimedProtocolMeter, EveryAccessEventuallySettles) {
  const net::Topology topo = net::make_ring(15);
  sim::SimConfig config;
  sim::Simulator sim(topo, config, sim::AccessSpec{}, 10);
  TimedProtocolMeter meter(quorum::from_read_quorum(15, 4), 2.0);
  sim.add_access_observer(&meter);
  sim.add_network_observer(&meter);
  sim.run_accesses(10'000);
  meter.settle_until(sim.now() + 10.0);
  EXPECT_EQ(meter.completed(), 10'000u);
  EXPECT_EQ(meter.granted() + (meter.completed() - meter.granted()),
            meter.completed());
}

TEST(TimedProtocolMeter, DisturbanceAbortsAreCounted) {
  // A fragmenting ring with long windows must abort some quorum-met
  // accesses through membership churn.
  const net::Topology topo = net::make_ring(31);
  sim::SimConfig config;
  config.warmup_accesses = 2'000;
  sim::Simulator sim(topo, config, sim::AccessSpec{}, 11);
  sim.run_accesses(config.warmup_accesses);
  TimedProtocolMeter meter(quorum::from_read_quorum(31, 2), 4.0);
  sim.add_access_observer(&meter);
  sim.add_network_observer(&meter);
  sim.run_accesses(60'000);
  meter.settle_until(sim.now() + 10.0);
  EXPECT_GT(meter.aborted_by_disturbance(), 0u);
  EXPECT_LT(meter.granted(), meter.completed());
}

} // namespace
} // namespace quora::metrics
