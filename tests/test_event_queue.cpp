// sim::EventQueue ordering and lifecycle. The simulator's bitwise
// reproducibility rests on the queue's (time, seq) total order, and the
// batch driver leans on clear() returning the queue to a truly fresh
// state — both are pinned here.

#include <gtest/gtest.h>

#include <vector>

#include "sim/event.hpp"

namespace {

using namespace quora;

TEST(EventQueue, OrdersByTime) {
  sim::EventQueue q;
  q.push(3.0, sim::EventKind::kAccess, 30);
  q.push(1.0, sim::EventKind::kAccess, 10);
  q.push(2.0, sim::EventKind::kAccess, 20);
  EXPECT_EQ(q.pop().index, 10u);
  EXPECT_EQ(q.pop().index, 20u);
  EXPECT_EQ(q.pop().index, 30u);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, EqualTimesPopInInsertionOrder) {
  // The deterministic tie-break: same timestamp resolves by seq, i.e.
  // FIFO. Interleave distinct times to make sure ties hold under heap
  // restructuring, not just in a trivially sorted run.
  sim::EventQueue q;
  q.push(5.0, sim::EventKind::kSiteFail, 0);
  q.push(5.0, sim::EventKind::kSiteRecover, 1);
  q.push(1.0, sim::EventKind::kAccess, 2);
  q.push(5.0, sim::EventKind::kLinkFail, 3);
  q.push(2.0, sim::EventKind::kAccess, 4);
  q.push(5.0, sim::EventKind::kLinkRecover, 5);

  EXPECT_EQ(q.pop().index, 2u);
  EXPECT_EQ(q.pop().index, 4u);
  // The four t=5 events must come back in push order.
  std::vector<std::uint32_t> tied;
  std::uint64_t prev_seq = 0;
  bool first = true;
  while (!q.empty()) {
    const sim::Event e = q.pop();
    EXPECT_DOUBLE_EQ(e.time, 5.0);
    if (!first) EXPECT_GT(e.seq, prev_seq);
    prev_seq = e.seq;
    first = false;
    tied.push_back(e.index);
  }
  EXPECT_EQ(tied, (std::vector<std::uint32_t>{0, 1, 3, 5}));
}

TEST(EventQueue, ClearReleasesCapacityAndRestartsSeq) {
  sim::EventQueue q;
  for (int i = 0; i < 1000; ++i) {
    q.push(static_cast<double>(i), sim::EventKind::kAccess, 0);
  }
  ASSERT_GE(q.capacity(), 1000u);

  q.clear();
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
  // Deterministic memory behaviour: clear() must actually release the
  // backing store, not merely empty it.
  EXPECT_EQ(q.capacity(), 0u);

  // Sequence numbers restart from zero, so a cleared-and-refilled queue
  // breaks ties exactly like a freshly constructed one (Simulator::reset
  // depends on this for exact replay).
  q.push(7.0, sim::EventKind::kAccess, 100);
  q.push(7.0, sim::EventKind::kAccess, 200);
  const sim::Event a = q.pop();
  const sim::Event b = q.pop();
  EXPECT_EQ(a.seq, 0u);
  EXPECT_EQ(a.index, 100u);
  EXPECT_EQ(b.seq, 1u);
  EXPECT_EQ(b.index, 200u);
}

TEST(EventQueue, ReusedAfterClearMatchesFreshQueue) {
  sim::EventQueue used;
  for (int i = 0; i < 64; ++i) {
    used.push(64.0 - i, sim::EventKind::kAccess, static_cast<std::uint32_t>(i));
  }
  while (!used.empty()) used.pop();
  used.clear();

  sim::EventQueue fresh;
  for (int i = 0; i < 64; ++i) {
    const double t = (i * 37) % 64;  // scrambled but identical for both
    used.push(t, sim::EventKind::kAccess, static_cast<std::uint32_t>(i));
    fresh.push(t, sim::EventKind::kAccess, static_cast<std::uint32_t>(i));
  }
  while (!fresh.empty()) {
    ASSERT_FALSE(used.empty());
    const sim::Event eu = used.pop();
    const sim::Event ef = fresh.pop();
    EXPECT_EQ(eu.time, ef.time);
    EXPECT_EQ(eu.seq, ef.seq);
    EXPECT_EQ(eu.index, ef.index);
  }
  EXPECT_TRUE(used.empty());
}

} // namespace
