// Tests for the Ahamad-Ammar analytic model and the exhaustive
// vote+quorum search (paper references [1, 7, 8]).

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "core/availability.hpp"
#include "core/optimize.hpp"
#include "core/vote_opt.hpp"

namespace quora::core {
namespace {

TEST(AhamadAmmar, PdfIsBinomialOverOtherSites) {
  // Perfect links: component of an up site = all up sites, so
  // f(v) = C(n-1, v-1) p^(v) (1-p)^(n-v) for v >= 1.
  const std::uint32_t n = 6;
  const double p = 0.8;
  const VotePdf pdf = ahamad_ammar_site_pdf(n, p);
  EXPECT_NEAR(pdf[0], 0.2, 1e-12);
  double check = 0.0;
  for (std::uint32_t v = 1; v <= n; ++v) {
    double binom = 1.0;
    for (std::uint32_t i = 0; i < v - 1; ++i) {
      binom *= static_cast<double>(n - 1 - i) / static_cast<double>(i + 1);
    }
    const double expected = binom * std::pow(p, v) * std::pow(1 - p, n - v);
    EXPECT_NEAR(pdf[v], expected, 1e-10) << "v=" << v;
    check += expected;
  }
  EXPECT_NEAR(check + pdf[0], 1.0, 1e-10);
}

TEST(ExactAvailability, MatchesCurveForUniformVotes) {
  // With uniform single votes, the subset enumeration must agree with the
  // tail-sum formulation through the analytic density.
  const std::uint32_t n = 7;
  const double p = 0.85;
  const std::vector<double> rel(n, p);
  const std::vector<net::Vote> votes(n, 1);
  const AvailabilityCurve curve(ahamad_ammar_site_pdf(n, p));
  for (net::Vote q_r = 1; q_r <= curve.max_read_quorum(); ++q_r) {
    const quorum::QuorumSpec spec = quorum::from_read_quorum(n, q_r);
    for (const double alpha : {0.0, 0.5, 1.0}) {
      EXPECT_NEAR(exact_availability(rel, votes, alpha, spec),
                  curve.availability(alpha, q_r), 1e-10)
          << "q_r=" << q_r << " alpha=" << alpha;
    }
  }
}

TEST(ExactAvailability, HandComputedTwoSites) {
  // Two sites, reliabilities p0, p1, one vote each, spec {1, 2} (ROWA).
  // Reads: origin up suffices -> P = (p0 + p1)/2.
  // Writes: both up -> p0 * p1 (origin necessarily up then).
  const std::array<double, 2> rel{0.9, 0.6};
  const std::array<net::Vote, 2> votes{1, 1};
  const quorum::QuorumSpec rowa{1, 2};
  EXPECT_NEAR(exact_availability(rel, votes, 1.0, rowa), (0.9 + 0.6) / 2, 1e-12);
  EXPECT_NEAR(exact_availability(rel, votes, 0.0, rowa), 0.9 * 0.6, 1e-12);
  EXPECT_NEAR(exact_availability(rel, votes, 0.5, rowa),
              0.5 * 0.75 + 0.5 * 0.54, 1e-12);
}

TEST(ExactAvailability, ZeroVoteSitesCannotHelp) {
  // A zero-vote site contributes origin-up mass but no votes.
  const std::array<double, 3> rel{0.9, 0.9, 0.9};
  const std::array<net::Vote, 3> votes{1, 1, 0};
  const quorum::QuorumSpec spec{1, 2};
  // Writes need both voting sites up; any up origin then counts.
  // P(w granted) = sum_S P(S) (|S|/3) [votes(S) >= 2].
  const double p = 0.9;
  const double expected = p * p * ((1 - p) * (2.0 / 3.0) + p * 1.0);
  EXPECT_NEAR(exact_availability(rel, votes, 0.0, spec), expected, 1e-12);
}

TEST(ExactAvailability, Guards) {
  const std::vector<double> rel(3, 0.9);
  const std::vector<net::Vote> votes(3, 1);
  EXPECT_THROW(exact_availability(rel, std::vector<net::Vote>(2, 1), 0.5, {1, 3}),
               std::invalid_argument);
  EXPECT_THROW(exact_availability(rel, votes, 1.5, {1, 3}), std::invalid_argument);
  EXPECT_THROW(exact_availability(std::vector<double>(21, 0.9),
                                  std::vector<net::Vote>(21, 1), 0.5, {1, 21}),
               std::invalid_argument);
}

TEST(VoteOpt, UniformReliabilityPrefersUniformMajority) {
  // The Ahamad-Ammar result the paper leans on in 5.5: for uniform
  // reliabilities, uniform votes with strict majority quorums win.
  const std::vector<double> rel(5, 0.9);
  const auto best = optimize_vote_assignment(rel, 0.5, 2);
  EXPECT_EQ(best.votes, std::vector<net::Vote>(5, 1));
  EXPECT_EQ(best.spec, (quorum::QuorumSpec{3, 3}));
  EXPECT_GT(best.configurations_evaluated, 100u);
}

TEST(VoteOpt, BestIsNeverWorseThanAnyUniformConfiguration) {
  const std::vector<double> rel{0.99, 0.9, 0.8, 0.7, 0.6};
  const auto best = optimize_vote_assignment(rel, 0.5, 3);
  const std::vector<net::Vote> uniform(5, 1);
  for (net::Vote q_w = 3; q_w <= 5; ++q_w) {
    const quorum::QuorumSpec spec{static_cast<net::Vote>(5 - q_w + 1), q_w};
    EXPECT_GE(best.availability + 1e-12,
              exact_availability(rel, uniform, 0.5, spec));
  }
}

TEST(VoteOpt, VotesFollowReliability) {
  // One nearly-perfect site among flaky ones should carry extra weight.
  const std::vector<double> rel{0.999, 0.7, 0.7, 0.7};
  const auto best = optimize_vote_assignment(rel, 0.5, 3);
  EXPECT_GE(best.votes[0], best.votes[1]);
  EXPECT_GE(best.votes[0], best.votes[2]);
  EXPECT_GE(best.votes[0], best.votes[3]);
  EXPECT_GT(best.votes[0], 0u);
}

TEST(VoteOpt, DegenerateSingleSite) {
  const std::vector<double> rel{0.9};
  const auto best = optimize_vote_assignment(rel, 0.5, 2);
  // Primary copy: all structure collapses to "is the site up".
  EXPECT_NEAR(best.availability, 0.9, 1e-12);
  EXPECT_EQ(best.spec.q_r, best.spec.q_w);
}

TEST(VoteOpt, Guards) {
  EXPECT_THROW(optimize_vote_assignment(std::vector<double>{}, 0.5, 2),
               std::invalid_argument);
  EXPECT_THROW(optimize_vote_assignment(std::vector<double>(9, 0.9), 0.5, 2),
               std::invalid_argument);
  EXPECT_THROW(optimize_vote_assignment(std::vector<double>(3, 0.9), 0.5, 0),
               std::invalid_argument);
}

TEST(VoteOpt, EndpointTheoremHoldsInTheModel) {
  // Ahamad & Ammar prove extrema occur at extreme quorum values; verify
  // across a reliability sweep via the analytic curve.
  for (const double p : {0.6, 0.8, 0.95}) {
    const AvailabilityCurve curve(ahamad_ammar_site_pdf(15, p));
    for (const double alpha : {0.0, 0.3, 0.7, 1.0}) {
      const auto best = optimize_exhaustive(curve, alpha);
      const double at_ends = std::max(
          curve.availability(alpha, 1),
          curve.availability(alpha, curve.max_read_quorum()));
      EXPECT_NEAR(best.value, at_ends, 1e-12) << "p=" << p << " alpha=" << alpha;
    }
  }
}

} // namespace
} // namespace quora::core
