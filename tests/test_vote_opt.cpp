// Tests for the Ahamad-Ammar analytic model and the exhaustive
// vote+quorum search (paper references [1, 7, 8]).

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "core/availability.hpp"
#include "core/component_dist.hpp"
#include "core/optimize.hpp"
#include "core/vote_opt.hpp"
#include "metrics/experiment.hpp"
#include "net/builders.hpp"
#include "sim/config.hpp"

namespace quora::core {
namespace {

TEST(AhamadAmmar, PdfIsBinomialOverOtherSites) {
  // Perfect links: component of an up site = all up sites, so
  // f(v) = C(n-1, v-1) p^(v) (1-p)^(n-v) for v >= 1.
  const std::uint32_t n = 6;
  const double p = 0.8;
  const VotePdf pdf = ahamad_ammar_site_pdf(n, p);
  EXPECT_NEAR(pdf[0], 0.2, 1e-12);
  double check = 0.0;
  for (std::uint32_t v = 1; v <= n; ++v) {
    double binom = 1.0;
    for (std::uint32_t i = 0; i < v - 1; ++i) {
      binom *= static_cast<double>(n - 1 - i) / static_cast<double>(i + 1);
    }
    const double expected = binom * std::pow(p, v) * std::pow(1 - p, n - v);
    EXPECT_NEAR(pdf[v], expected, 1e-10) << "v=" << v;
    check += expected;
  }
  EXPECT_NEAR(check + pdf[0], 1.0, 1e-10);
}

TEST(ExactAvailability, MatchesCurveForUniformVotes) {
  // With uniform single votes, the subset enumeration must agree with the
  // tail-sum formulation through the analytic density.
  const std::uint32_t n = 7;
  const double p = 0.85;
  const std::vector<double> rel(n, p);
  const std::vector<net::Vote> votes(n, 1);
  const AvailabilityCurve curve(ahamad_ammar_site_pdf(n, p));
  for (net::Vote q_r = 1; q_r <= curve.max_read_quorum(); ++q_r) {
    const quorum::QuorumSpec spec = quorum::from_read_quorum(n, q_r);
    for (const double alpha : {0.0, 0.5, 1.0}) {
      EXPECT_NEAR(exact_availability(rel, votes, alpha, spec),
                  curve.availability(alpha, q_r), 1e-10)
          << "q_r=" << q_r << " alpha=" << alpha;
    }
  }
}

TEST(ExactAvailability, HandComputedTwoSites) {
  // Two sites, reliabilities p0, p1, one vote each, spec {1, 2} (ROWA).
  // Reads: origin up suffices -> P = (p0 + p1)/2.
  // Writes: both up -> p0 * p1 (origin necessarily up then).
  const std::array<double, 2> rel{0.9, 0.6};
  const std::array<net::Vote, 2> votes{1, 1};
  const quorum::QuorumSpec rowa{1, 2};
  EXPECT_NEAR(exact_availability(rel, votes, 1.0, rowa), (0.9 + 0.6) / 2, 1e-12);
  EXPECT_NEAR(exact_availability(rel, votes, 0.0, rowa), 0.9 * 0.6, 1e-12);
  EXPECT_NEAR(exact_availability(rel, votes, 0.5, rowa),
              0.5 * 0.75 + 0.5 * 0.54, 1e-12);
}

TEST(ExactAvailability, ZeroVoteSitesCannotHelp) {
  // A zero-vote site contributes origin-up mass but no votes.
  const std::array<double, 3> rel{0.9, 0.9, 0.9};
  const std::array<net::Vote, 3> votes{1, 1, 0};
  const quorum::QuorumSpec spec{1, 2};
  // Writes need both voting sites up; any up origin then counts.
  // P(w granted) = sum_S P(S) (|S|/3) [votes(S) >= 2].
  const double p = 0.9;
  const double expected = p * p * ((1 - p) * (2.0 / 3.0) + p * 1.0);
  EXPECT_NEAR(exact_availability(rel, votes, 0.0, spec), expected, 1e-12);
}

TEST(ExactAvailability, Guards) {
  const std::vector<double> rel(3, 0.9);
  const std::vector<net::Vote> votes(3, 1);
  EXPECT_THROW(exact_availability(rel, std::vector<net::Vote>(2, 1), 0.5, {1, 3}),
               std::invalid_argument);
  EXPECT_THROW(exact_availability(rel, votes, 1.5, {1, 3}), std::invalid_argument);
  EXPECT_THROW(exact_availability(std::vector<double>(21, 0.9),
                                  std::vector<net::Vote>(21, 1), 0.5, {1, 21}),
               std::invalid_argument);
}

TEST(VoteOpt, UniformReliabilityPrefersUniformMajority) {
  // The Ahamad-Ammar result the paper leans on in 5.5: for uniform
  // reliabilities, uniform votes with strict majority quorums win.
  const std::vector<double> rel(5, 0.9);
  const auto best = optimize_vote_assignment(rel, 0.5, 2);
  EXPECT_EQ(best.votes, std::vector<net::Vote>(5, 1));
  EXPECT_EQ(best.spec, (quorum::QuorumSpec{3, 3}));
  EXPECT_GT(best.configurations_evaluated, 100u);
}

TEST(VoteOpt, BestIsNeverWorseThanAnyUniformConfiguration) {
  const std::vector<double> rel{0.99, 0.9, 0.8, 0.7, 0.6};
  const auto best = optimize_vote_assignment(rel, 0.5, 3);
  const std::vector<net::Vote> uniform(5, 1);
  for (net::Vote q_w = 3; q_w <= 5; ++q_w) {
    const quorum::QuorumSpec spec{static_cast<net::Vote>(5 - q_w + 1), q_w};
    EXPECT_GE(best.availability + 1e-12,
              exact_availability(rel, uniform, 0.5, spec));
  }
}

TEST(VoteOpt, VotesFollowReliability) {
  // One nearly-perfect site among flaky ones should carry extra weight.
  const std::vector<double> rel{0.999, 0.7, 0.7, 0.7};
  const auto best = optimize_vote_assignment(rel, 0.5, 3);
  EXPECT_GE(best.votes[0], best.votes[1]);
  EXPECT_GE(best.votes[0], best.votes[2]);
  EXPECT_GE(best.votes[0], best.votes[3]);
  EXPECT_GT(best.votes[0], 0u);
}

TEST(VoteOpt, DegenerateSingleSite) {
  const std::vector<double> rel{0.9};
  const auto best = optimize_vote_assignment(rel, 0.5, 2);
  // Primary copy: all structure collapses to "is the site up".
  EXPECT_NEAR(best.availability, 0.9, 1e-12);
  EXPECT_EQ(best.spec.q_r, best.spec.q_w);
}

TEST(VoteOpt, Guards) {
  EXPECT_THROW(optimize_vote_assignment(std::vector<double>{}, 0.5, 2),
               std::invalid_argument);
  EXPECT_THROW(optimize_vote_assignment(std::vector<double>(9, 0.9), 0.5, 2),
               std::invalid_argument);
  EXPECT_THROW(optimize_vote_assignment(std::vector<double>(3, 0.9), 0.5, 0),
               std::invalid_argument);
}

TEST(VoteOpt, EndpointTheoremHoldsInTheModel) {
  // Ahamad & Ammar prove extrema occur at extreme quorum values; verify
  // across a reliability sweep via the analytic curve.
  for (const double p : {0.6, 0.8, 0.95}) {
    const AvailabilityCurve curve(ahamad_ammar_site_pdf(15, p));
    for (const double alpha : {0.0, 0.3, 0.7, 1.0}) {
      const auto best = optimize_exhaustive(curve, alpha);
      const double at_ends = std::max(
          curve.availability(alpha, 1),
          curve.availability(alpha, curve.max_read_quorum()));
      EXPECT_NEAR(best.value, at_ends, 1e-12) << "p=" << p << " alpha=" << alpha;
    }
  }
}

// ---------------------------------------------------------------------------
// §5.4 write-constrained search on the analytic curves: the feasibility
// predicate is exactly A(0, q_r) >= A_w, and the feasible set is the
// up-set [min_feasible_q_r, floor(T/2)] because W is monotone in q_r.

TEST(WriteConstrainedEdges, FeasibilityPredicateIsPureWriteAvailability) {
  const AvailabilityCurve curve(ring_site_pdf(31, 0.96, 0.96));
  for (net::Vote q = 1; q <= curve.max_read_quorum(); ++q) {
    EXPECT_NEAR(curve.write_availability(q), curve.availability(0.0, q), 1e-15)
        << "q=" << q;
  }
}

TEST(WriteConstrainedEdges, FloorExactlyAtBestWriteAvailabilityIsFeasible) {
  // A_w set to the best attainable A(0, q_r) (at the majority endpoint)
  // leaves exactly one feasible point; >= must treat the boundary as in.
  const AvailabilityCurve curve(ring_site_pdf(31, 0.96, 0.96));
  const net::Vote max_q = curve.max_read_quorum();
  const double best_w = curve.write_availability(max_q);
  const auto best = optimize_write_constrained(curve, 0.75, best_w);
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(best->q_r(), max_q);
  EXPECT_NEAR(best->value, curve.availability(0.75, max_q), 1e-15);
}

TEST(WriteConstrainedEdges, OneUlpAboveBestWriteAvailabilityIsInfeasible) {
  const AvailabilityCurve curve(ring_site_pdf(31, 0.96, 0.96));
  const double best_w = curve.write_availability(curve.max_read_quorum());
  const double just_above = std::nextafter(best_w, 1.0);
  EXPECT_FALSE(optimize_write_constrained(curve, 0.75, just_above).has_value());
  EXPECT_FALSE(min_feasible_q_r(curve, just_above).has_value());
}

TEST(WriteConstrainedEdges, InteriorBoundaryFloorIsInclusive) {
  // A_w equal to A(0, q) for an interior q makes q the minimum feasible
  // read quorum — the boundary point itself satisfies the constraint.
  const AvailabilityCurve curve(fully_connected_site_pdf(31, 0.96, 0.96));
  const net::Vote q = 9;
  const auto min_q = min_feasible_q_r(curve, curve.write_availability(q));
  ASSERT_TRUE(min_q.has_value());
  EXPECT_EQ(*min_q, q);
}

TEST(WriteConstrainedEdges, FeasibleSetIsAnUpSet) {
  // W(T - q_r + 1) is nondecreasing in q_r, so once a floor is met it
  // stays met all the way to the majority endpoint.
  const AvailabilityCurve curve(ring_site_pdf(31, 0.96, 0.96));
  const auto min_q = min_feasible_q_r(curve, 0.1);
  ASSERT_TRUE(min_q.has_value());
  for (net::Vote q = 1; q <= curve.max_read_quorum(); ++q) {
    EXPECT_EQ(curve.write_availability(q) >= 0.1, q >= *min_q) << "q=" << q;
  }
}

TEST(WriteConstrainedEdges, ConstrainedOptimumSitsAtAFeasibleEndpoint) {
  // Within the feasible up-set, the §5 endpoint structure survives: on
  // the analytic curves the constrained argmax is either the minimum
  // feasible q_r or the majority endpoint.
  for (const double p : {0.8, 0.96}) {
    const AvailabilityCurve curve(ring_site_pdf(31, p, p));
    const double floor = 0.5 * curve.write_availability(curve.max_read_quorum());
    const auto min_q = min_feasible_q_r(curve, floor);
    ASSERT_TRUE(min_q.has_value());
    for (const double alpha : {0.0, 0.25, 0.75, 1.0}) {
      const auto best = optimize_write_constrained(curve, alpha, floor);
      ASSERT_TRUE(best.has_value()) << "p=" << p << " alpha=" << alpha;
      const double at_ends =
          std::max(curve.availability(alpha, *min_q),
                   curve.availability(alpha, curve.max_read_quorum()));
      EXPECT_NEAR(best->value, at_ends, 1e-12) << "p=" << p << " alpha=" << alpha;
    }
  }
}

// ---------------------------------------------------------------------------
// §5.3 endpoint structure on the closed-form paper curves, plus the one
// exception the paper reports.

TEST(EndpointStructure, ClosedFormCurvesPeakAtAnEndpoint) {
  // Ring and fully connected (paper topologies 0 and "complete"): every
  // alpha-curve attains its maximum at q_r = 1 or q_r = floor(T/2).
  for (const auto& pdf : {ring_site_pdf(101, 0.96, 0.96),
                          fully_connected_site_pdf(101, 0.96, 0.96),
                          ring_site_pdf(31, 0.8, 0.8)}) {
    const AvailabilityCurve curve(pdf);
    for (const double alpha : {0.0, 0.25, 0.5, 0.75, 1.0}) {
      const auto best = optimize_exhaustive(curve, alpha);
      const double at_ends =
          std::max(curve.availability(alpha, 1),
                   curve.availability(alpha, curve.max_read_quorum()));
      EXPECT_NEAR(best.value, at_ends, 1e-12) << "alpha=" << alpha;
    }
  }
}

TEST(EndpointStructure, Topology16Alpha075InteriorMaximumRegression) {
  // The named exception of §5.3: topology 16 (ring-101 + 16 spread
  // chords) at alpha = .75 is the only configuration in the paper whose
  // availability curve strictly beats BOTH endpoints in the interior
  // (EXPERIMENTS.md measures the advantage at ~.039 near q_r = 15).
  // Guard it as a regression: a fixed-seed measured curve must keep
  // showing a strict interior maximum beyond the batch-means CI.
  const net::Topology topo = net::make_ring_with_chords(101, 16);
  sim::SimConfig config;
  config.warmup_accesses = 20'000;
  config.accesses_per_batch = 150'000;
  metrics::MeasurePolicy policy;
  policy.alphas = {0.75};
  policy.seed = 0xF160u;
  policy.threads = 1;
  policy.batch.min_batches = 5;
  policy.batch.max_batches = 5;
  const auto curves = metrics::measure_curves(topo, config, policy);
  const AvailabilityCurve curve = curves.pooled_curve();

  const auto best = optimize_exhaustive(curve, 0.75);
  const double endpoint_best =
      std::max(curve.availability(0.75, 1),
               curve.availability(0.75, curve.max_read_quorum()));

  EXPECT_GT(best.q_r(), 1u);
  EXPECT_LT(best.q_r(), curve.max_read_quorum());
  // Strictly interior: beats the better endpoint by more than the CI.
  EXPECT_GT(best.value - endpoint_best, curves.max_half_width);
  // And the optimum lives in the low-q_r region the paper plots (~15).
  EXPECT_GE(best.q_r(), 5u);
  EXPECT_LE(best.q_r(), 30u);
}

} // namespace
} // namespace quora::core
