// Tests for the dyn module: the Jajodia-Mutchler dynamic-voting baseline
// and the adaptive reassignment agent closing the §4.3 loop.

#include <gtest/gtest.h>

#include "conn/component_tracker.hpp"
#include "conn/live_network.hpp"
#include "core/reassign.hpp"
#include "dyn/adaptive.hpp"
#include "dyn/dynamic_voting.hpp"
#include "net/builders.hpp"
#include "quorum/quorum_spec.hpp"
#include "rng/distributions.hpp"
#include "rng/xoshiro256ss.hpp"
#include "sim/simulator.hpp"

namespace quora::dyn {
namespace {

TEST(DynamicVoting, FullNetworkCommits) {
  const net::Topology topo = net::make_ring(5);
  conn::LiveNetwork live(topo);
  const conn::ComponentTracker tracker(live);
  DynamicVoting dv(topo);

  EXPECT_TRUE(dv.attempt_update(tracker, 0));
  EXPECT_EQ(dv.committed_updates(), 1u);
  for (net::SiteId s = 0; s < 5; ++s) {
    EXPECT_EQ(dv.state(s).version, 1u);
    EXPECT_EQ(dv.state(s).cardinality, 5u);
  }
}

TEST(DynamicVoting, MinorityOfLastElectorateCannotCommit) {
  const net::Topology topo = net::make_ring(5);
  conn::LiveNetwork live(topo);
  const conn::ComponentTracker tracker(live);
  DynamicVoting dv(topo);
  ASSERT_TRUE(dv.attempt_update(tracker, 0));  // electorate = all 5

  // Partition into {1,2} and {3,4,0}: only the 3-side has a majority of 5.
  live.set_link_up(0, false);
  live.set_link_up(2, false);
  EXPECT_FALSE(dv.attempt_update(tracker, 1));
  EXPECT_TRUE(dv.attempt_update(tracker, 3));
  EXPECT_EQ(dv.committed_updates(), 2u);
}

TEST(DynamicVoting, ElectorateShrinksWithCommits) {
  // The hallmark of dynamic voting: after {3,4,0} commits (cardinality
  // now 3), a further split leaving {3,4} still commits — 2 of the last
  // electorate of 3 is a majority, even though it is 2 of 5 copies.
  const net::Topology topo = net::make_ring(5);
  conn::LiveNetwork live(topo);
  const conn::ComponentTracker tracker(live);
  DynamicVoting dv(topo);
  ASSERT_TRUE(dv.attempt_update(tracker, 0));
  live.set_link_up(0, false);
  live.set_link_up(2, false);  // {1,2} vs {3,4,0}
  ASSERT_TRUE(dv.attempt_update(tracker, 3));

  live.set_site_up(0, false);  // {3,4} remain from the electorate of 3
  EXPECT_TRUE(dv.attempt_update(tracker, 3));
  EXPECT_EQ(dv.state(3).cardinality, 2u);

  // A static majority protocol would have denied that: 2 of 5 votes.
  EXPECT_FALSE(quorum::majority(5).allows_write(2));
}

TEST(DynamicVoting, StaleSideStaysBlockedUntilRejoin) {
  const net::Topology topo = net::make_ring(5);
  conn::LiveNetwork live(topo);
  const conn::ComponentTracker tracker(live);
  DynamicVoting dv(topo);
  ASSERT_TRUE(dv.attempt_update(tracker, 0));
  live.set_link_up(0, false);
  live.set_link_up(2, false);  // {1,2} vs {3,4,0}
  ASSERT_TRUE(dv.attempt_update(tracker, 3));
  ASSERT_TRUE(dv.attempt_update(tracker, 3));

  // {1,2} holds version 1 with cardinality 5 — never a majority of 5.
  EXPECT_FALSE(dv.attempt_update(tracker, 1));
  // Heal: the merged component carries version 3, electorate 3; all 5
  // sites present > 3/2 — commit succeeds and re-expands the electorate.
  live.set_link_up(0, true);
  live.set_link_up(2, true);
  live.set_site_up(0, true);
  EXPECT_TRUE(dv.attempt_update(tracker, 1));
  EXPECT_EQ(dv.state(1).cardinality, 5u);
}

TEST(DynamicVoting, DownOriginFails) {
  const net::Topology topo = net::make_ring(4);
  conn::LiveNetwork live(topo);
  const conn::ComponentTracker tracker(live);
  DynamicVoting dv(topo);
  live.set_site_up(2, false);
  EXPECT_FALSE(dv.attempt_update(tracker, 2));
}

TEST(DynamicVoting, VersionsNeverRegress) {
  rng::Xoshiro256ss gen(55);
  const net::Topology topo = net::make_ring_with_chords(9, 2);
  conn::LiveNetwork live(topo);
  const conn::ComponentTracker tracker(live);
  DynamicVoting dv(topo);

  std::uint64_t last_committed = 0;
  for (int step = 0; step < 10'000; ++step) {
    const double u = gen.next_double();
    if (u < 0.4) {
      const auto s =
          static_cast<net::SiteId>(rng::uniform_index(gen, topo.site_count()));
      live.set_site_up(s, !live.is_site_up(s));
    } else if (u < 0.6) {
      const auto l =
          static_cast<net::LinkId>(rng::uniform_index(gen, topo.link_count()));
      live.set_link_up(l, !live.is_link_up(l));
    } else {
      const auto origin =
          static_cast<net::SiteId>(rng::uniform_index(gen, topo.site_count()));
      dv.attempt_update(tracker, origin);
      EXPECT_GE(dv.committed_updates(), last_committed);
      last_committed = dv.committed_updates();
      // Version monotone and consistent with the commit counter.
      std::uint64_t max_version = 0;
      for (net::SiteId s = 0; s < topo.site_count(); ++s) {
        max_version = std::max(max_version, dv.state(s).version);
      }
      EXPECT_EQ(max_version, dv.committed_updates());
    }
  }
  EXPECT_GT(dv.committed_updates(), 100u);
}

TEST(AdaptiveReassigner, EstimatesAlphaFromTheStream) {
  const net::Topology topo = net::make_ring(15);
  core::QuorumReassignment qr(topo, quorum::majority(15));
  AdaptiveReassigner agent(topo, qr);

  sim::AccessSpec spec;
  spec.alpha = 0.8;
  sim::Simulator sim(topo, sim::SimConfig{}, spec, 31);
  sim.add_access_observer(&agent);
  sim.run_accesses(20'000);
  EXPECT_NEAR(agent.estimated_alpha(), 0.8, 0.05);
}

TEST(AdaptiveReassigner, TracksAlphaShifts) {
  const net::Topology topo = net::make_ring(15);
  core::QuorumReassignment qr(topo, quorum::majority(15));
  AdaptiveReassigner agent(topo, qr);

  sim::AccessSpec spec;
  spec.alpha = 0.9;
  sim::Simulator sim(topo, sim::SimConfig{}, spec, 32);
  sim.add_access_observer(&agent);
  sim.run_accesses(30'000);
  EXPECT_GT(agent.estimated_alpha(), 0.8);
  sim.set_access_alpha(0.1);
  sim.run_accesses(30'000);
  // Exponential decay must have pulled the estimate down near 0.1.
  EXPECT_LT(agent.estimated_alpha(), 0.2);
}

TEST(AdaptiveReassigner, InstallsTowardReadOptimumOnReadHeavyStream) {
  const net::Topology topo = net::make_ring(25);
  core::QuorumReassignment qr(topo, quorum::majority(25));
  AdaptiveReassigner::Options options;
  options.min_write_availability = 0.0;  // unconstrained — clearest signal
  AdaptiveReassigner agent(topo, qr, options);

  sim::AccessSpec spec;
  spec.alpha = 0.95;  // reads dominate: ring optimum is tiny q_r
  sim::Simulator sim(topo, sim::SimConfig{}, spec, 33);
  sim.add_access_observer(&agent);
  sim.run_accesses(60'000);

  EXPECT_GT(agent.installs(), 0u);
  const auto eff = qr.effective(sim.tracker(), 0);
  EXPECT_LT(eff.spec.q_r, 13u);  // moved below the initial majority
  EXPECT_GT(eff.version, 1u);
}

TEST(AdaptiveReassigner, RespectsWriteFloorInItsInstalls) {
  const net::Topology topo = net::make_ring_with_chords(25, 4);
  core::QuorumReassignment qr(topo, quorum::majority(25));
  AdaptiveReassigner::Options options;
  options.min_write_availability = 0.30;
  AdaptiveReassigner agent(topo, qr, options);

  sim::AccessSpec spec;
  spec.alpha = 0.95;
  sim::Simulator sim(topo, sim::SimConfig{}, spec, 34);
  sim.add_access_observer(&agent);
  sim.run_accesses(60'000);

  // Whatever it installed, it must never have installed read-one/
  // write-all (whose write availability on this network is ~0).
  const auto eff = qr.effective(sim.tracker(), 0);
  EXPECT_GT(eff.spec.q_r, 1u);
}

TEST(AdaptiveReassigner, NoInstallsBeforeMinSamples) {
  const net::Topology topo = net::make_ring(15);
  core::QuorumReassignment qr(topo, quorum::majority(15));
  AdaptiveReassigner::Options options;
  options.min_samples = 1'000'000;  // unreachable in this run
  AdaptiveReassigner agent(topo, qr, options);

  sim::AccessSpec spec;
  spec.alpha = 0.95;
  sim::Simulator sim(topo, sim::SimConfig{}, spec, 35);
  sim.add_access_observer(&agent);
  sim.run_accesses(30'000);
  EXPECT_EQ(agent.installs(), 0u);
  EXPECT_EQ(qr.latest_version(), 1u);
}

} // namespace
} // namespace quora::dyn
