// Unit tests for sim::for_each_batch, the library's fan-out idiom:
// serial fallback, exactly-once dispatch when batches are scarcer than
// workers, and first-exception-wins rethrow on the caller's thread.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "sim/batch.hpp"

namespace quora {
namespace {

TEST(ForEachBatch, ZeroBatchesIsANoOp) {
  std::atomic<int> calls{0};
  sim::for_each_batch(0, 8, [&](std::uint32_t) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ForEachBatch, ThreadsZeroFallsBackToSerial) {
  // threads=0 must run everything on the calling thread, in order.
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<std::uint32_t> order;
  sim::for_each_batch(5, 0, [&](std::uint32_t b) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    order.push_back(b);
  });
  EXPECT_EQ(order, (std::vector<std::uint32_t>{0, 1, 2, 3, 4}));
}

TEST(ForEachBatch, SingleThreadRunsInOrder) {
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<std::uint32_t> order;
  sim::for_each_batch(4, 1, [&](std::uint32_t b) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    order.push_back(b);
  });
  EXPECT_EQ(order, (std::vector<std::uint32_t>{0, 1, 2, 3}));
}

TEST(ForEachBatch, EachBatchRunsExactlyOnce) {
  constexpr std::uint32_t kBatches = 64;
  std::mutex mu;
  std::multiset<std::uint32_t> seen;
  sim::for_each_batch(kBatches, 4, [&](std::uint32_t b) {
    const std::scoped_lock lock(mu);
    seen.insert(b);
  });
  ASSERT_EQ(seen.size(), kBatches);
  for (std::uint32_t b = 0; b < kBatches; ++b) {
    EXPECT_EQ(seen.count(b), 1u) << "batch " << b;
  }
}

TEST(ForEachBatch, FewerBatchesThanWorkersStillRunsEachOnce) {
  std::mutex mu;
  std::multiset<std::uint32_t> seen;
  sim::for_each_batch(3, 16, [&](std::uint32_t b) {
    const std::scoped_lock lock(mu);
    seen.insert(b);
  });
  EXPECT_EQ(seen, (std::multiset<std::uint32_t>{0, 1, 2}));
}

TEST(ForEachBatch, RethrowsBodyExceptionOnCaller) {
  EXPECT_THROW(
      sim::for_each_batch(8, 4,
                          [](std::uint32_t b) {
                            if (b == 3) throw std::runtime_error("batch 3");
                          }),
      std::runtime_error);
}

TEST(ForEachBatch, SerialPathPropagatesException) {
  std::atomic<int> calls{0};
  try {
    sim::for_each_batch(8, 1, [&](std::uint32_t b) {
      ++calls;
      if (b == 2) throw std::logic_error("stop");
    });
    FAIL() << "expected std::logic_error";
  } catch (const std::logic_error&) {
  }
  // Serial execution stops at the throwing batch.
  EXPECT_EQ(calls.load(), 3);
}

TEST(ForEachBatch, FirstExceptionWins) {
  // Every batch throws with its own message; whichever surfaced first is
  // the one rethrown, and it must be one of the messages we threw (not a
  // corrupted or default-constructed error).
  std::atomic<int> started{0};
  try {
    sim::for_each_batch(16, 4, [&](std::uint32_t b) {
      ++started;
      throw std::runtime_error("batch " + std::to_string(b));
    });
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& err) {
    const std::string what = err.what();
    EXPECT_EQ(what.rfind("batch ", 0), 0u) << what;
  }
  // A worker that caught an exception stops pulling batches, so at most
  // one batch per worker ran.
  EXPECT_LE(started.load(), 4);
  EXPECT_GE(started.load(), 1);
}

TEST(ForEachBatch, DefaultThreadCountIsPositive) {
  EXPECT_GE(sim::default_thread_count(), 1u);
}

} // namespace
} // namespace quora
