// Unit tests for sim::for_each_batch, the library's fan-out idiom:
// serial fallback, exactly-once dispatch when batches are scarcer than
// workers, and first-exception-wins rethrow on the caller's thread.
// Plus sim::ShardSet, which applies that idiom to intra-batch parallel
// stepping and must be bit-identical to the serial shard order.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "net/builders.hpp"
#include "sim/batch.hpp"
#include "sim/shard_set.hpp"

namespace quora {
namespace {

TEST(ForEachBatch, ZeroBatchesIsANoOp) {
  std::atomic<int> calls{0};
  sim::for_each_batch(0, 8, [&](std::uint32_t) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ForEachBatch, ThreadsZeroFallsBackToSerial) {
  // threads=0 must run everything on the calling thread, in order.
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<std::uint32_t> order;
  sim::for_each_batch(5, 0, [&](std::uint32_t b) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    order.push_back(b);
  });
  EXPECT_EQ(order, (std::vector<std::uint32_t>{0, 1, 2, 3, 4}));
}

TEST(ForEachBatch, SingleThreadRunsInOrder) {
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<std::uint32_t> order;
  sim::for_each_batch(4, 1, [&](std::uint32_t b) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    order.push_back(b);
  });
  EXPECT_EQ(order, (std::vector<std::uint32_t>{0, 1, 2, 3}));
}

TEST(ForEachBatch, EachBatchRunsExactlyOnce) {
  constexpr std::uint32_t kBatches = 64;
  std::mutex mu;
  std::multiset<std::uint32_t> seen;
  sim::for_each_batch(kBatches, 4, [&](std::uint32_t b) {
    const std::scoped_lock lock(mu);
    seen.insert(b);
  });
  ASSERT_EQ(seen.size(), kBatches);
  for (std::uint32_t b = 0; b < kBatches; ++b) {
    EXPECT_EQ(seen.count(b), 1u) << "batch " << b;
  }
}

TEST(ForEachBatch, FewerBatchesThanWorkersStillRunsEachOnce) {
  std::mutex mu;
  std::multiset<std::uint32_t> seen;
  sim::for_each_batch(3, 16, [&](std::uint32_t b) {
    const std::scoped_lock lock(mu);
    seen.insert(b);
  });
  EXPECT_EQ(seen, (std::multiset<std::uint32_t>{0, 1, 2}));
}

TEST(ForEachBatch, RethrowsBodyExceptionOnCaller) {
  EXPECT_THROW(
      sim::for_each_batch(8, 4,
                          [](std::uint32_t b) {
                            if (b == 3) throw std::runtime_error("batch 3");
                          }),
      std::runtime_error);
}

TEST(ForEachBatch, SerialPathPropagatesException) {
  std::atomic<int> calls{0};
  try {
    sim::for_each_batch(8, 1, [&](std::uint32_t b) {
      ++calls;
      if (b == 2) throw std::logic_error("stop");
    });
    FAIL() << "expected std::logic_error";
  } catch (const std::logic_error&) {
  }
  // Serial execution stops at the throwing batch.
  EXPECT_EQ(calls.load(), 3);
}

TEST(ForEachBatch, FirstExceptionWins) {
  // Every batch throws with its own message; whichever surfaced first is
  // the one rethrown, and it must be one of the messages we threw (not a
  // corrupted or default-constructed error).
  std::atomic<int> started{0};
  try {
    sim::for_each_batch(16, 4, [&](std::uint32_t b) {
      ++started;
      throw std::runtime_error("batch " + std::to_string(b));
    });
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& err) {
    const std::string what = err.what();
    EXPECT_EQ(what.rfind("batch ", 0), 0u) << what;
  }
  // A worker that caught an exception stops pulling batches, so at most
  // one batch per worker ran.
  EXPECT_LE(started.load(), 4);
  EXPECT_GE(started.load(), 1);
}

TEST(ForEachBatch, DefaultThreadCountIsPositive) {
  EXPECT_GE(sim::default_thread_count(), 1u);
}

// ---------------------------------------------------------------------------
// ShardSet: intra-batch parallel stepping over independent shards.

bool counters_equal(const sim::Simulator::Counters& a,
                    const sim::Simulator::Counters& b) {
  return a.accesses == b.accesses && a.site_failures == b.site_failures &&
         a.site_recoveries == b.site_recoveries &&
         a.link_failures == b.link_failures &&
         a.link_recoveries == b.link_recoveries;
}

TEST(ShardSet, ParallelRunMatchesSerialBitwise) {
  const net::Topology topo = net::make_erdos_renyi(20, 0.3, 5);
  const sim::SimConfig config;  // paper defaults
  const sim::AccessSpec spec;
  constexpr std::uint32_t kShards = 6;
  constexpr std::uint64_t kAccesses = 2000;

  sim::ShardSet serial(topo, config, spec, 31415, kShards);
  sim::ShardSet parallel(topo, config, spec, 31415, kShards);
  serial.run_accesses(kAccesses, 1);
  parallel.run_accesses(kAccesses, 4);

  for (std::uint32_t i = 0; i < kShards; ++i) {
    EXPECT_EQ(serial.shard(i).now(), parallel.shard(i).now()) << "shard " << i;
    EXPECT_TRUE(counters_equal(serial.shard(i).counters(),
                               parallel.shard(i).counters()))
        << "shard " << i;
  }
  EXPECT_TRUE(counters_equal(serial.aggregate_counters(),
                             parallel.aggregate_counters()));
}

TEST(ShardSet, ShardsAreIndependentReplications) {
  const net::Topology topo = net::make_ring(15);
  sim::ShardSet set(topo, sim::SimConfig{}, sim::AccessSpec{}, 7, 3);
  set.run_accesses(1000, 1);
  // Distinct RNG streams: the shards' clocks are continuous draws from
  // disjoint subsequences and cannot coincide.
  EXPECT_NE(set.shard(0).now(), set.shard(1).now());
  EXPECT_NE(set.shard(1).now(), set.shard(2).now());
  const sim::Simulator::Counters agg = set.aggregate_counters();
  EXPECT_EQ(agg.accesses, 3000u);
}

TEST(ShardSet, Stream0OffsetsTheStreamWindow) {
  // Shard i of a set started at stream0=s replays shard i+s of a set
  // started at stream0=0: the window is a pure offset, so shard results
  // are reusable across differently-partitioned runs.
  const net::Topology topo = net::make_ring(15);
  sim::ShardSet base(topo, sim::SimConfig{}, sim::AccessSpec{}, 99, 4, 0);
  sim::ShardSet offset(topo, sim::SimConfig{}, sim::AccessSpec{}, 99, 2, 2);
  base.run_accesses(500, 1);
  offset.run_accesses(500, 1);
  for (std::uint32_t i = 0; i < 2; ++i) {
    EXPECT_EQ(base.shard(2 + i).now(), offset.shard(i).now());
    EXPECT_TRUE(counters_equal(base.shard(2 + i).counters(),
                               offset.shard(i).counters()));
  }
}

} // namespace
} // namespace quora
