// Tests for witness replicas (vote-holding, data-less copies — the
// Paris/Long lineage of the paper's reference [17]).

#include <gtest/gtest.h>

#include <stdexcept>

#include "conn/component_tracker.hpp"
#include "conn/live_network.hpp"
#include "net/builders.hpp"
#include "quorum/witness_store.hpp"
#include "rng/distributions.hpp"
#include "rng/xoshiro256ss.hpp"

namespace quora::quorum {
namespace {

std::vector<bool> mask_for(std::uint32_t n, std::initializer_list<net::SiteId> w) {
  std::vector<bool> mask(n, false);
  for (const net::SiteId s : w) mask[s] = true;
  return mask;
}

TEST(WitnessStore, ValidatesConstruction) {
  const net::Topology topo = net::make_ring(5);
  EXPECT_THROW(WitnessStore(topo, std::vector<bool>(4, false)),
               std::invalid_argument);
  EXPECT_THROW(WitnessStore(topo, std::vector<bool>(5, true)),
               std::invalid_argument);
  const WitnessStore store(topo, mask_for(5, {1, 3}));
  EXPECT_EQ(store.data_copy_count(), 3u);
  EXPECT_TRUE(store.is_witness(1));
  EXPECT_FALSE(store.is_witness(0));
}

TEST(WitnessStore, WitnessVotesCountTowardQuorums) {
  const net::Topology topo = net::make_ring(5);
  WitnessStore store(topo, mask_for(5, {3, 4}));
  conn::LiveNetwork live(topo);
  const conn::ComponentTracker tracker(live);
  const QuorumSpec spec{3, 3};  // strict majority of 5

  ASSERT_TRUE(store.write(tracker, spec, 0, 42).granted);

  // Partition so the acting side is {2 data, 1 witness}: ring links
  // {1,2} and {4,0} cut -> components {2,3,4} and {0,1}.
  live.set_link_up(1, false);
  live.set_link_up(4, false);
  const auto r = store.read(tracker, spec, 2);  // {2,3,4}: data 2, witness 3,4
  ASSERT_TRUE(r.granted);
  EXPECT_TRUE(r.data_accessible);
  EXPECT_EQ(r.value, 42u);
  EXPECT_TRUE(r.current);
  // The two-site component {0,1} lacks the majority.
  EXPECT_FALSE(store.read(tracker, spec, 0).granted);
}

TEST(WitnessStore, MinorityWriteDeniedRegardlessOfWitnesses) {
  const net::Topology topo = net::make_ring(6);
  WitnessStore store(topo, mask_for(6, {1, 2}));
  conn::LiveNetwork live(topo);
  const conn::ComponentTracker tracker(live);
  const QuorumSpec spec{3, 4};

  ASSERT_TRUE(store.write(tracker, spec, 0, 1).granted);  // v1 everywhere
  // Cut {3,4} and {5,0}: components {4,5,0} (3 votes) and {1,2,3}.
  live.set_link_up(3, false);
  live.set_link_up(5, false);
  EXPECT_FALSE(store.write(tracker, spec, 5, 2).granted);  // 3 < q_w = 4
  EXPECT_EQ(store.committed_version(), 1u);
}

TEST(WitnessStore, StaleDataBehindWitnessesIsRefusedNotServed) {
  // Deterministic construction of the witness-specific refusal.
  const net::Topology topo = net::make_ring(6);
  WitnessStore store(topo, mask_for(6, {1, 2}));
  conn::LiveNetwork live(topo);
  const conn::ComponentTracker tracker(live);
  const QuorumSpec spec{3, 4};

  ASSERT_TRUE(store.write(tracker, spec, 0, 1).granted);  // v1 everywhere

  // Site 3 goes down; the rest (5 sites, 5 votes) commits v2: witnesses
  // 1,2 learn version 2, site 3 still has v1 data.
  live.set_site_up(3, false);
  ASSERT_TRUE(store.write(tracker, spec, 0, 2).granted);

  // Now isolate {1,2,3}: 3 votes = q_r. The newest version they know (2)
  // exists only on the witnesses; site 3's data is v1.
  live.set_site_up(3, true);
  live.set_link_up(0, false);  // cut {0,1}
  live.set_link_up(3, false);  // cut {3,4}
  const auto r = store.read(tracker, spec, 3);
  ASSERT_TRUE(r.granted);
  EXPECT_FALSE(r.data_accessible) << "stale copy must not be served";
  EXPECT_FALSE(r.current);

  // The other side still reads v2 normally.
  const auto ok = store.read(tracker, spec, 5);
  ASSERT_TRUE(ok.granted);
  EXPECT_TRUE(ok.data_accessible);
  EXPECT_EQ(ok.value, 2u);
}

TEST(WitnessStore, AllWitnessComponentCannotAcceptWrites) {
  // Give witnesses enough votes that they alone reach q_w; the write must
  // still be refused — there is nowhere to put the value.
  const net::Topology topo("w", 4, {net::Link{0, 1}, net::Link{1, 2},
                                    net::Link{2, 3}},
                           std::vector<net::Vote>{1, 3, 3, 1});
  WitnessStore store(topo, mask_for(4, {1, 2}));
  conn::LiveNetwork live(topo);
  const conn::ComponentTracker tracker(live);
  live.set_site_up(0, false);
  live.set_site_up(3, false);
  // {1,2} holds 6 votes < 7: denied by votes anyway; relax to see the
  // data-placement refusal in isolation:
  const QuorumSpec loose{2, 6};
  const auto w = store.write(tracker, loose, 1, 9);
  EXPECT_FALSE(w.granted);
  EXPECT_EQ(store.committed_version(), 0u);
}

TEST(WitnessStore, NeverServesStaleUnderFuzz) {
  rng::Xoshiro256ss gen(440044);
  const net::Topology topo = net::make_ring_with_chords(11, 2);
  WitnessStore store(topo, witness_mask_lowest_degree(topo, 4));
  conn::LiveNetwork live(topo);
  const conn::ComponentTracker tracker(live);
  const QuorumSpec spec = from_read_quorum(11, 4);
  std::uint64_t value = 10;
  std::uint64_t served = 0;
  std::uint64_t refused_by_witness_gap = 0;

  for (int step = 0; step < 30'000; ++step) {
    const double u = gen.next_double();
    const auto origin =
        static_cast<net::SiteId>(rng::uniform_index(gen, topo.site_count()));
    if (u < 0.10) {
      const auto s =
          static_cast<net::SiteId>(rng::uniform_index(gen, topo.site_count()));
      live.set_site_up(s, false);
    } else if (u < 0.30) {
      const auto s =
          static_cast<net::SiteId>(rng::uniform_index(gen, topo.site_count()));
      live.set_site_up(s, true);
    } else if (u < 0.40) {
      const auto l =
          static_cast<net::LinkId>(rng::uniform_index(gen, topo.link_count()));
      live.set_link_up(l, false);
    } else if (u < 0.60) {
      const auto l =
          static_cast<net::LinkId>(rng::uniform_index(gen, topo.link_count()));
      live.set_link_up(l, true);
    } else if (u < 0.80) {
      store.write(tracker, spec, origin, value++);
    } else {
      const auto r = store.read(tracker, spec, origin);
      if (r.granted && r.data_accessible) {
        ++served;
        EXPECT_TRUE(r.current) << "stale read at step " << step;
      } else if (r.granted) {
        ++refused_by_witness_gap;
      }
    }
  }
  EXPECT_GT(served, 1'000u);
  // The witness-specific refusal fires but is rare (the availability
  // price the bench measures).
  EXPECT_GT(refused_by_witness_gap, 0u);
}

TEST(WitnessMask, LowestDegreePlacement) {
  const net::Topology topo = net::make_star(6);  // hub degree 5, leaves 1
  const auto mask = witness_mask_lowest_degree(topo, 3);
  EXPECT_FALSE(mask[0]);  // the hub is never chosen before the leaves
  int count = 0;
  for (const bool w : mask) count += w;
  EXPECT_EQ(count, 3);
  EXPECT_THROW(witness_mask_lowest_degree(topo, 6), std::invalid_argument);
}

} // namespace
} // namespace quora::quorum
