// Chaos scenarios against the message-level cluster: scripted partitions,
// crash-during-commit partial writes, retry/backoff behaviour, QR
// reassignment under partitions with stale-version rejection, and the
// byte-identical determinism contract of the fault-injection engine.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "fault/event_log.hpp"
#include "fault/fault_plan.hpp"
#include "fault/injector.hpp"
#include "io/topology_io.hpp"
#include "msg/cluster.hpp"
#include "msg/invariants.hpp"
#include "net/builders.hpp"

namespace quora::msg {
namespace {

/// Failure-free background model: the fault plan is the only source of
/// faults, so every effect in a test is the scripted one.
Cluster::Params chaos_params(net::Vote q_r, net::Vote q_w) {
  Cluster::Params params;
  params.spec = quorum::QuorumSpec{q_r, q_w};
  params.config.reliability = 0.999999;
  params.config.rho = 1e-9;
  return params;
}

struct ChaosRun {
  fault::EventLog log;
  std::vector<AccessOutcome> outcomes;
  std::vector<Cluster::CommitRecord> commits;
  SafetyReport safety;
  std::uint64_t retries = 0;
  std::uint64_t stale_rejections = 0;
  std::uint64_t installs = 0;
  std::uint64_t dropped = 0;
  std::uint64_t duplicated = 0;
};

ChaosRun run_chaos(const net::Topology& topo, Cluster::Params params,
                   const fault::FaultPlan& plan, std::uint64_t seed,
                   double horizon) {
  Cluster cluster(topo, params, seed);
  fault::FaultInjector injector(plan, seed);
  ChaosRun run;
  cluster.attach_injector(&injector);
  cluster.attach_log(&run.log);
  cluster.run_until(horizon);
  run.outcomes = cluster.outcomes();
  run.commits = cluster.commits();
  run.safety = check_safety(cluster);
  run.retries = cluster.retries();
  run.stale_rejections = cluster.stale_rejections();
  run.installs = cluster.installs().size();
  run.dropped = cluster.messages_dropped();
  run.duplicated = cluster.messages_duplicated();
  return run;
}

std::uint64_t count_reason(const ChaosRun& run, DenyReason reason) {
  std::uint64_t n = 0;
  for (const AccessOutcome& o : run.outcomes) n += o.deny_reason == reason;
  return n;
}

/// One-copy check on the visible history: every granted outcome that
/// exposes (version, value) must agree — a version number names exactly
/// one value, even when partial writes float around after a coordinator
/// crash.
void expect_versions_name_unique_values(const ChaosRun& run) {
  std::map<std::uint64_t, std::uint64_t> value_of;
  for (const AccessOutcome& o : run.outcomes) {
    if (!o.granted || o.version == 0) continue;
    const auto [it, inserted] = value_of.emplace(o.version, o.value);
    EXPECT_EQ(it->second, o.value)
        << "version " << o.version << " observed with two values";
  }
}

TEST(Chaos, CleanPartitionDegradesAvailabilityNotSafety) {
  const net::Topology topo = net::make_ring_with_chords(10, 2);
  fault::FaultPlan plan;
  plan.partition(30.0, {{0, 1, 2, 3, 4, 5}, {6, 7, 8, 9}}).heal(80.0);
  const ChaosRun run =
      run_chaos(topo, chaos_params(4, 7), plan, 17, 120.0);

  EXPECT_TRUE(run.safety.ok()) << run.safety.violations.front().message;
  expect_versions_name_unique_values(run);
  // The 4-site side can never reach q_r=4... it holds exactly 4 votes, so
  // reads survive there; writes (q_w=7) die on both metrics during the
  // partition: expect a visible pile of no-quorum denials.
  EXPECT_GT(count_reason(run, DenyReason::kNoQuorum), 0u);
  // After the heal the system must still decide accesses.
  std::uint64_t granted_after_heal = 0;
  for (const AccessOutcome& o : run.outcomes) {
    granted_after_heal += o.granted && o.submit_time > 85.0;
  }
  EXPECT_GT(granted_after_heal, 0u);
}

TEST(Chaos, CrashDuringCommitLeavesConsistentVersions) {
  const net::Topology topo = net::make_ring_with_chords(10, 2);
  fault::FaultPlan plan;
  plan.arm_crash_on_commit(10.0, fault::kAnySite, 15.0)
      .arm_crash_on_commit(50.0, fault::kAnySite, 15.0);
  const ChaosRun run =
      run_chaos(topo, chaos_params(4, 7), plan, 23, 120.0);

  // Both triggers must have fired: the coordinator died after flooding
  // its commit but before assembling the ack quorum.
  EXPECT_EQ(count_reason(run, DenyReason::kCoordinatorCrash), 2u);
  ASSERT_EQ(2, std::count_if(run.log.lines().begin(), run.log.lines().end(),
                             [](const std::string& l) {
                               return l.find("crash-on-commit coord=") !=
                                      std::string::npos;
                             }));

  // The partial write is deliberately not rolled back. Version-number
  // semantics must absorb it: later writes pick strictly newer versions
  // (no duplicate commit), later reads never go backwards, and any site
  // that applied the orphaned commit agrees on its value.
  EXPECT_TRUE(run.safety.ok()) << run.safety.violations.front().message;
  expect_versions_name_unique_values(run);

  // The system keeps committing after both crashes.
  std::uint64_t commits_after = 0;
  for (const Cluster::CommitRecord& c : run.commits) {
    commits_after += c.decide_time > 60.0;
  }
  EXPECT_GT(commits_after, 0u);
}

TEST(Chaos, RetriesRecoverTimeoutsOnALossyNetwork) {
  const net::Topology topo = net::make_ring_with_chords(10, 2);
  fault::FaultPlan plan;
  plan.drop(0.0, 120.0, 0.3);

  Cluster::Params no_retries = chaos_params(4, 7);
  Cluster::Params with_retries = chaos_params(4, 7);
  with_retries.max_retries = 3;

  const ChaosRun baseline = run_chaos(topo, no_retries, plan, 31, 120.0);
  const ChaosRun retried = run_chaos(topo, with_retries, plan, 31, 120.0);

  EXPECT_EQ(baseline.retries, 0u);
  EXPECT_GT(retried.retries, 0u);
  EXPECT_GT(baseline.dropped, 0u);

  const auto availability = [](const ChaosRun& run) {
    std::uint64_t granted = 0;
    for (const AccessOutcome& o : run.outcomes) granted += o.granted;
    return static_cast<double>(granted) /
           static_cast<double>(run.outcomes.size());
  };
  // Retries must buy real availability on a 30%-loss network.
  EXPECT_GT(availability(retried), availability(baseline) + 0.05);

  // Without a retry budget a lost phase ends in kTimeout; with one,
  // unrecoverable accesses surface as kAbandoned with attempts consumed.
  EXPECT_GT(count_reason(baseline, DenyReason::kTimeout), 0u);
  EXPECT_EQ(count_reason(baseline, DenyReason::kAbandoned), 0u);
  EXPECT_GT(count_reason(retried, DenyReason::kAbandoned), 0u);
  for (const AccessOutcome& o : retried.outcomes) {
    if (o.deny_reason == DenyReason::kAbandoned) {
      EXPECT_GT(o.attempts, 0u);
    }
    if (o.deny_reason == DenyReason::kTimeout) {
      EXPECT_EQ(o.attempts, 0u);
    }
  }
  EXPECT_TRUE(retried.safety.ok()) << retried.safety.violations.front().message;
  expect_versions_name_unique_values(retried);
}

TEST(Chaos, ReassignmentMidPartitionRejectsStaleCoordinators) {
  const net::Topology topo = net::make_ring_with_chords(10, 2);
  // {0..7} holds exactly q_w=8 votes: it may install (5,6) mid-partition.
  // The partition then shifts so site 7 carries version 2 into the
  // version-1 group {7,8,9}, which holds exactly q_r(v1)=3 votes — its
  // coordinators keep trying and must hit site 7's stale-version denial.
  fault::FaultPlan plan;
  plan.partition(20.0, {{0, 1, 2, 3, 4, 5, 6, 7}, {8, 9}})
      .reassign(40.0, 2, quorum::QuorumSpec{5, 6})
      .heal_links(60.0)
      .partition(60.0, {{0, 1, 2, 3, 4, 5, 6}, {7, 8, 9}})
      .heal(100.0);
  const ChaosRun run =
      run_chaos(topo, chaos_params(3, 8), plan, 5, 140.0);

  EXPECT_EQ(run.installs, 1u);
  EXPECT_TRUE(run.log.contains("fault reassign origin=2 qr=(5,6) v=2 installed"));
  EXPECT_GT(run.stale_rejections, 0u);
  EXPECT_TRUE(run.log.contains("stale-reject"));
  EXPECT_GT(count_reason(run, DenyReason::kStaleAssignment), 0u);
  // §2.2 safety: nothing was ever *granted* under the superseded
  // assignment after the install decided, and reads stayed consistent.
  EXPECT_TRUE(run.safety.ok()) << run.safety.violations.front().message;
  expect_versions_name_unique_values(run);
  // After the full heal everyone converges on version 2.
  std::uint64_t granted_v2_after_heal = 0;
  for (const AccessOutcome& o : run.outcomes) {
    if (o.granted && o.submit_time > 105.0) {
      EXPECT_EQ(o.qr_version, 2u);
      ++granted_v2_after_heal;
    }
  }
  EXPECT_GT(granted_v2_after_heal, 0u);
}

TEST(Chaos, OriginDownAccessesGetTheirOwnReason) {
  const net::Topology topo = net::make_ring_with_chords(10, 2);
  fault::FaultPlan plan;
  plan.site_down(10.0, 2).heal(70.0);
  const ChaosRun run =
      run_chaos(topo, chaos_params(4, 7), plan, 41, 100.0);
  EXPECT_GT(count_reason(run, DenyReason::kOriginDown), 0u);
  for (const AccessOutcome& o : run.outcomes) {
    if (o.deny_reason == DenyReason::kOriginDown) {
      EXPECT_EQ(o.origin, 2u);
      EXPECT_GT(o.submit_time, 10.0);
      EXPECT_LT(o.submit_time, 70.0);
    }
  }
  EXPECT_TRUE(run.safety.ok()) << run.safety.violations.front().message;
}

TEST(Chaos, SameSeedRunsReplayByteIdenticalLogs) {
  const net::Topology topo = net::make_ring_with_chords(10, 2);
  fault::FaultPlan plan;
  plan.partition(20.0, {{0, 1, 2, 3, 4, 5, 6, 7}, {8, 9}})
      .reassign(40.0, 2, quorum::QuorumSpec{5, 6})
      .heal(60.0)
      .drop(10.0, 90.0, 0.2)
      .delay(10.0, 90.0, 0.3, 0.01)
      .duplicate(10.0, 90.0, 0.15)
      .arm_crash_on_commit(70.0, fault::kAnySite, 10.0);

  Cluster::Params params = chaos_params(3, 8);
  params.max_retries = 2;
  const ChaosRun a = run_chaos(topo, params, plan, 777, 120.0);
  const ChaosRun b = run_chaos(topo, params, plan, 777, 120.0);
  EXPECT_EQ(a.log.lines(), b.log.lines());
  EXPECT_EQ(a.log.hash(), b.log.hash());
  ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
  EXPECT_GT(a.log.size(), 0u);
  EXPECT_GT(a.duplicated, 0u);

  // A different seed must actually change the run (the logs carry times).
  const ChaosRun c = run_chaos(topo, params, plan, 778, 120.0);
  EXPECT_NE(a.log.hash(), c.log.hash());
}

TEST(Chaos, InjectorDoesNotPerturbTheBaselineRun) {
  // An attached injector whose plan is empty must leave the simulation
  // byte-identical to no injector at all: the engine only consumes
  // cluster randomness for its own events.
  const net::Topology topo = net::make_ring_with_chords(10, 2);
  Cluster::Params params = chaos_params(4, 7);

  Cluster bare(topo, params, 11);
  bare.run_until(80.0);

  Cluster injected(topo, params, 11);
  fault::FaultInjector empty(fault::FaultPlan{}, 11);
  injected.attach_injector(&empty);
  injected.run_until(80.0);

  ASSERT_EQ(bare.outcomes().size(), injected.outcomes().size());
  for (std::size_t i = 0; i < bare.outcomes().size(); ++i) {
    EXPECT_DOUBLE_EQ(bare.outcomes()[i].submit_time,
                     injected.outcomes()[i].submit_time);
    EXPECT_DOUBLE_EQ(bare.outcomes()[i].decide_time,
                     injected.outcomes()[i].decide_time);
    EXPECT_EQ(bare.outcomes()[i].granted, injected.outcomes()[i].granted);
  }
  EXPECT_EQ(bare.messages_sent(), injected.messages_sent());
}

/// Availability of accesses submitted outside domain "rg0" inside the
/// window [from, until).
double availability_outside_rg0(const ChaosRun& run, const net::Topology& topo,
                                double from, double until) {
  std::uint64_t n = 0, granted = 0;
  for (const AccessOutcome& o : run.outcomes) {
    if (o.submit_time < from || o.submit_time >= until) continue;
    if (topo.domain_prefix(o.origin, 1) == "rg0") continue;
    ++n;
    granted += o.granted;
  }
  return n == 0 ? 0.0 : static_cast<double>(granted) / static_cast<double>(n);
}

TEST(Chaos, RegionOutageSparesDomainSpreadAssignments) {
  // The acceptance scenario of the sweep harness, as a test: a full rg0
  // outage kills a vote assignment concentrated in rg0 but leaves the
  // uniform domain-spread majority serving from the surviving regions.
  fault::FaultPlan plan;
  plan.domain_down(60.0, "rg0").domain_up(160.0, "rg0");

  const net::Topology spread_topo = net::make_geo(net::GeoSpec{});
  const ChaosRun spread =
      run_chaos(spread_topo, chaos_params(13, 13), plan, 404, 240.0);

  // Weighted: rg0's 8 sites hold 3 votes each (24 of T=40), quorum 21 —
  // no quorum can assemble without rg0.
  std::istringstream weighted_in(
      "sites 24\n"
      "geo 3 2 1 4\n"
      "vote 0 3\nvote 1 3\nvote 2 3\nvote 3 3\n"
      "vote 4 3\nvote 5 3\nvote 6 3\nvote 7 3\n");
  const net::Topology weighted_topo = io::load_system(weighted_in).topology;
  const ChaosRun weighted =
      run_chaos(weighted_topo, chaos_params(21, 21), plan, 404, 240.0);

  EXPECT_TRUE(spread.log.contains("fault domain-down rg0 sites=8"));
  EXPECT_TRUE(spread.safety.ok()) << spread.safety.violations.front().message;
  EXPECT_TRUE(weighted.safety.ok()) << weighted.safety.violations.front().message;

  const double spread_avail =
      availability_outside_rg0(spread, spread_topo, 70.0, 150.0);
  const double weighted_avail =
      availability_outside_rg0(weighted, weighted_topo, 70.0, 150.0);
  EXPECT_GT(spread_avail, 0.5);
  EXPECT_GE(spread_avail, weighted_avail + 0.1)
      << "spread=" << spread_avail << " weighted=" << weighted_avail;

  // After the domain heals, the weighted assignment serves again.
  std::uint64_t granted_after = 0;
  for (const AccessOutcome& o : weighted.outcomes) {
    granted_after += o.granted && o.submit_time > 170.0;
  }
  EXPECT_GT(granted_after, 0u);
}

TEST(Chaos, RackCascadeIsDeterministicAndScoped) {
  const net::Topology topo = net::make_geo(net::GeoSpec{});
  fault::FaultPlan plan;
  plan.correlate(3, 1.0, 30.0).crash(50.0, 2, 60.0);
  const Cluster::Params params = chaos_params(13, 13);

  const ChaosRun a = run_chaos(topo, params, plan, 505, 150.0);
  const ChaosRun b = run_chaos(topo, params, plan, 505, 150.0);
  EXPECT_EQ(a.log.lines(), b.log.lines());
  EXPECT_EQ(a.log.hash(), b.log.hash());

  // p = 1 rack contagion: the scripted crash of site 2 takes its three
  // rack-mates (rg0/dc0/rk0 = sites 0..3) down with it — and nothing else,
  // because cascade victims never trigger further cascades.
  for (const char* needle : {"fault correlated site=0 with=2",
                             "fault correlated site=1 with=2",
                             "fault correlated site=3 with=2"}) {
    EXPECT_TRUE(a.log.contains(needle)) << needle;
  }
  const auto correlated = std::count_if(
      a.log.lines().begin(), a.log.lines().end(), [](const std::string& l) {
        return l.find("fault correlated") != std::string::npos;
      });
  EXPECT_EQ(correlated, 3);
  EXPECT_TRUE(a.safety.ok()) << a.safety.violations.front().message;
  expect_versions_name_unique_values(a);
}

TEST(Chaos, OneWayCutIsGrayButLossy) {
  const net::Topology topo = net::make_ring_with_chords(10, 2);
  fault::FaultPlan plan;
  plan.oneway_down(20.0, 0, 1).oneway_up(90.0, 0, 1);

  Cluster cluster(topo, chaos_params(4, 7), 31);
  fault::FaultInjector injector(plan, 31);
  fault::EventLog log;
  cluster.attach_injector(&injector);
  cluster.attach_log(&log);
  cluster.run_until(120.0);

  EXPECT_TRUE(log.contains("fault oneway-down 0->1"));
  EXPECT_TRUE(log.contains("fault oneway-up 0->1"));
  // Messages crossing the dead direction die in flight; the reverse
  // direction keeps delivering.
  EXPECT_GT(cluster.oneway_losses(), 0u);

  // The cut is a *gray* failure: the component tracker (and so the
  // paper's instantaneous oracle) sees a fully connected network the
  // whole time, while the message layer routes around the loss.
  std::uint64_t n = 0, granted = 0, oracle = 0;
  for (const AccessOutcome& o : cluster.outcomes()) {
    ++n;
    granted += o.granted;
    oracle += o.oracle_granted;
  }
  ASSERT_GT(n, 0u);
  EXPECT_EQ(oracle, n);
  EXPECT_GT(granted, 0u);
  EXPECT_TRUE(check_safety(cluster).ok());
}

TEST(Chaos, CrashOnCommitImmediateRestartNeverLeavesTheUpSet) {
  const net::Topology topo = net::make_ring_with_chords(10, 2);
  fault::FaultPlan plan;
  plan.arm_crash_on_commit(10.0, fault::kAnySite, 0.0);
  const ChaosRun run = run_chaos(topo, chaos_params(4, 7), plan, 23, 120.0);

  // The trigger fires and the pending access dies coordinator-crash...
  EXPECT_EQ(count_reason(run, DenyReason::kCoordinatorCrash), 1u);
  EXPECT_TRUE(run.log.contains("down_for=0.000000"));
  // ...but the site restarts at the same instant: it never observably
  // leaves the up set, so no later access is denied for a down origin.
  EXPECT_EQ(count_reason(run, DenyReason::kOriginDown), 0u);
  EXPECT_TRUE(run.safety.ok()) << run.safety.violations.front().message;
  expect_versions_name_unique_values(run);

  // Contrast: the same trigger with a real down-time strands accesses
  // submitted at the dead coordinator.
  fault::FaultPlan slow;
  slow.arm_crash_on_commit(10.0, fault::kAnySite, 40.0);
  const ChaosRun down = run_chaos(topo, chaos_params(4, 7), slow, 23, 120.0);
  EXPECT_GT(count_reason(down, DenyReason::kOriginDown), 0u);
}

TEST(Chaos, RetryExhaustionAbandonsWithinTheAccessBudget) {
  const net::Topology topo = net::make_ring(5);
  fault::FaultPlan plan;
  plan.drop(0.0, 200.0, 1.0);  // the network eats every message

  Cluster::Params params = chaos_params(3, 3);
  params.phase_timeout = 0.5;
  params.max_retries = 3;
  params.backoff_base = 0.1;
  params.backoff_jitter = 0.0;
  params.access_budget = 10.0;
  const ChaosRun run = run_chaos(topo, params, plan, 11, 60.0);

  ASSERT_FALSE(run.outcomes.empty());
  std::uint64_t attempts = 0;
  for (const AccessOutcome& o : run.outcomes) {
    EXPECT_FALSE(o.granted);
    EXPECT_LE(o.attempts, params.max_retries);
    // Abandonment is strictly the end of a retry schedule; an access can
    // also die earlier on a provable lease conflict (kNoQuorum), even on
    // its final attempt.
    if (o.deny_reason == DenyReason::kAbandoned) {
      EXPECT_GT(o.attempts, 0u);
    }
    attempts += o.attempts;
  }
  EXPECT_GT(count_reason(run, DenyReason::kAbandoned), 0u);
  // Accesses still pending at the horizon hold the remaining retries.
  EXPECT_GE(run.retries, attempts);

  // A tight wall-clock budget cuts the retry schedule short: same chaos,
  // same seed, fewer retries, and every decision lands inside the budget
  // plus one trailing phase window.
  params.access_budget = 1.0;
  const ChaosRun tight = run_chaos(topo, params, plan, 11, 60.0);
  ASSERT_FALSE(tight.outcomes.empty());
  EXPECT_LT(tight.retries, run.retries);
  const double slack =
      params.access_budget + std::max(params.phase_timeout, params.commit_timeout);
  for (const AccessOutcome& o : tight.outcomes) {
    EXPECT_FALSE(o.granted);
    EXPECT_LE(o.decide_time - o.submit_time, slack + 1e-9)
        << "submitted " << o.submit_time;
  }
}

TEST(Chaos, LinkLatencyClassesStretchDecidedLatency) {
  const net::Topology fast = net::make_ring_with_chords(10, 2);
  net::Topology slow = net::make_ring_with_chords(10, 2);
  for (net::LinkId l = 0; l < slow.link_count(); ++l) {
    slow.set_link_latency(l, net::LinkLatency{0.05, 0.001});
  }

  const Cluster::Params params = chaos_params(4, 7);
  const fault::FaultPlan empty;
  const ChaosRun f = run_chaos(fast, params, empty, 3, 60.0);
  const ChaosRun s = run_chaos(slow, params, empty, 3, 60.0);

  const auto mean_latency = [](const ChaosRun& run) {
    double sum = 0.0;
    std::uint64_t n = 0;
    for (const AccessOutcome& o : run.outcomes) {
      if (!o.granted) continue;
      sum += o.decide_time - o.submit_time;
      ++n;
    }
    return n == 0 ? 0.0 : sum / static_cast<double>(n);
  };
  const double fast_mean = mean_latency(f);
  const double slow_mean = mean_latency(s);
  ASSERT_GT(fast_mean, 0.0);
  // Every hop now pays a 50 ms floor instead of a 5 ms mean draw; two
  // round-trip phases push the decided latency well past the fast run.
  EXPECT_GT(slow_mean, fast_mean + 0.04)
      << "fast=" << fast_mean << " slow=" << slow_mean;
  EXPECT_TRUE(f.safety.ok());
  EXPECT_TRUE(s.safety.ok());
}

} // namespace
} // namespace quora::msg
