// Observability-layer unit tests: registry registration semantics,
// histogram bucket edges, cross-thread flush-merge, trace-ring overflow
// policy, and exporter output (compact text + Chrome trace_event JSON).
//
// These exercise the obs *library*, which is built in both QUORA_OBS
// modes — only the instrumentation macros vanish when OFF — so nothing
// here is gated on obs::kEnabled.

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace quora {
namespace {

// --- registry registration semantics ----------------------------------

TEST(ObsRegistry, DuplicateCounterRegistrationIsIdempotent) {
  obs::Registry registry;
  const obs::Counter a = registry.counter("dup");
  const obs::Counter b = registry.counter("dup");
  a.add(2);
  b.add(3);
  const obs::Registry::Snapshot snap = registry.snapshot();
  ASSERT_EQ(snap.counters.size(), 1u);
  EXPECT_EQ(snap.counters[0].first, "dup");
  EXPECT_EQ(snap.counters[0].second, 5u);
}

TEST(ObsRegistry, DuplicateHistogramRegistrationIsIdempotent) {
  obs::Registry registry;
  const std::vector<double> bounds{1.0, 2.0};
  const obs::Histogram a = registry.histogram("h", bounds);
  const obs::Histogram b = registry.histogram("h", bounds);
  a.record(0.5);
  b.record(1.5);
  const obs::Registry::Snapshot snap = registry.snapshot();
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].total, 2u);
}

TEST(ObsRegistry, KindMismatchThrows) {
  obs::Registry registry;
  registry.counter("name");
  EXPECT_THROW(registry.histogram("name", {1.0}), std::invalid_argument);

  obs::Registry other;
  other.histogram("name", {1.0});
  EXPECT_THROW(other.counter("name"), std::invalid_argument);
}

TEST(ObsRegistry, HistogramBoundsMismatchThrows) {
  obs::Registry registry;
  registry.histogram("h", {1.0, 2.0});
  EXPECT_THROW(registry.histogram("h", {1.0, 3.0}), std::invalid_argument);
  EXPECT_THROW(registry.histogram("h", {1.0}), std::invalid_argument);
  // Same bounds re-resolve fine.
  EXPECT_NO_THROW(registry.histogram("h", {1.0, 2.0}));
}

TEST(ObsRegistry, HistogramRejectsBadBounds) {
  obs::Registry registry;
  EXPECT_THROW(registry.histogram("empty", {}), std::invalid_argument);
  EXPECT_THROW(registry.histogram("unsorted", {2.0, 1.0}),
               std::invalid_argument);
}

TEST(ObsRegistry, DefaultConstructedHandlesAreInert) {
  const obs::Counter counter;
  const obs::Gauge gauge;
  const obs::Histogram histogram;
  EXPECT_FALSE(counter.valid());
  EXPECT_FALSE(gauge.valid());
  EXPECT_FALSE(histogram.valid());
  // Must be safe no-ops, not crashes.
  counter.add(1);
  gauge.set(7);
  histogram.record(0.5);
}

// --- histogram bucket edges -------------------------------------------

TEST(ObsRegistry, HistogramBucketEdgesAreInclusiveUpperBounds) {
  obs::Registry registry;
  const obs::Histogram h = registry.histogram("edges", {1.0, 2.0, 5.0});
  h.record(0.0);   // bucket 0 (le=1)
  h.record(1.0);   // bucket 0 — bounds are inclusive
  h.record(1.000001);  // bucket 1 (le=2)
  h.record(2.0);   // bucket 1
  h.record(5.0);   // bucket 2 (le=5)
  h.record(5.1);   // overflow
  h.record(1e9);   // overflow
  const obs::Registry::Snapshot snap = registry.snapshot();
  ASSERT_EQ(snap.histograms.size(), 1u);
  const obs::Registry::HistogramValue& hv = snap.histograms[0];
  ASSERT_EQ(hv.counts.size(), 4u);  // 3 bounds + overflow
  EXPECT_EQ(hv.counts[0], 2u);
  EXPECT_EQ(hv.counts[1], 2u);
  EXPECT_EQ(hv.counts[2], 1u);
  EXPECT_EQ(hv.counts[3], 2u);
  EXPECT_EQ(hv.total, 7u);
}

// --- gauges ------------------------------------------------------------

TEST(ObsRegistry, GaugeIsLastWriteWins) {
  obs::Registry registry;
  const obs::Gauge g = registry.gauge("depth");
  g.set(10);
  g.set(-3);
  const obs::Registry::Snapshot snap = registry.snapshot();
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_EQ(snap.gauges[0].first, "depth");
  EXPECT_EQ(snap.gauges[0].second, -3);
}

// --- cross-thread flush-merge -----------------------------------------

TEST(ObsRegistry, FlushMergesThreadLocalBuffers) {
  obs::Registry registry;
  const obs::Counter counter = registry.counter("hits");
  const obs::Histogram h = registry.histogram("lat", {0.5});

  constexpr int kThreads = 4;
  constexpr std::uint64_t kAddsPerThread = 10000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&counter, &h] {
      for (std::uint64_t i = 0; i < kAddsPerThread; ++i) {
        counter.add(1);
        h.record(i % 2 == 0 ? 0.25 : 0.75);
      }
    });
  }
  for (std::thread& w : workers) w.join();

  const obs::Registry::Snapshot snap = registry.snapshot();
  ASSERT_EQ(snap.counters.size(), 1u);
  EXPECT_EQ(snap.counters[0].second, kThreads * kAddsPerThread);
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].total, kThreads * kAddsPerThread);
  EXPECT_EQ(snap.histograms[0].counts[0], kThreads * kAddsPerThread / 2);
  EXPECT_EQ(snap.histograms[0].counts[1], kThreads * kAddsPerThread / 2);
}

TEST(ObsRegistry, SnapshotIsCumulativeAcrossFlushes) {
  obs::Registry registry;
  const obs::Counter counter = registry.counter("c");
  counter.add(2);
  EXPECT_EQ(registry.snapshot().counters[0].second, 2u);
  counter.add(3);
  registry.flush();
  EXPECT_EQ(registry.snapshot().counters[0].second, 5u);
}

TEST(ObsRegistry, LateRegistrationFallsBackToCentralTotals) {
  obs::Registry registry;
  const obs::Counter early = registry.counter("early");
  early.add(1);  // sizes this thread's buffer at one slot
  const obs::Counter late = registry.counter("late");
  late.add(7);   // slot is past the buffer; folds into totals directly
  early.add(1);
  const obs::Registry::Snapshot snap = registry.snapshot();
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters[0].second, 2u);  // "early" (sorted by name)
  EXPECT_EQ(snap.counters[1].second, 7u);  // "late"
}

// --- metrics text export ----------------------------------------------

TEST(ObsRegistry, WriteTextIsSortedAndComplete) {
  obs::Registry registry;
  registry.counter("b.counter").add(2);
  registry.counter("a.counter").add(1);
  registry.gauge("g").set(4);
  registry.histogram("h", {1.0}).record(0.5);
  std::ostringstream out;
  registry.write_text(out);
  EXPECT_EQ(out.str(),
            "counter a.counter 1\n"
            "counter b.counter 2\n"
            "gauge g 4\n"
            "histogram h total=1\n"
            "  le=1 1\n"
            "  le=+inf 0\n");
}

// --- trace ring --------------------------------------------------------

TEST(ObsTrace, RecordsTypedEventsInOrder) {
  obs::TraceRecorder trace(8);
  trace.record_at(0.5, obs::EventKind::kAccessSubmit, 3, 100, 0, 1);
  trace.record_at(0.75, obs::EventKind::kAccessGrant, 4, 100, 9, 2);
  ASSERT_EQ(trace.size(), 2u);
  EXPECT_EQ(trace.recorded(), 2u);
  EXPECT_EQ(trace.dropped(), 0u);
  const obs::TraceEvent& first = trace.at(0);
  EXPECT_DOUBLE_EQ(first.time, 0.5);
  EXPECT_EQ(first.kind, obs::EventKind::kAccessSubmit);
  EXPECT_EQ(first.site, 3u);
  EXPECT_EQ(first.request, 100u);
  EXPECT_EQ(first.a, 0u);
  EXPECT_EQ(first.x, 1u);
  EXPECT_EQ(trace.at(1).kind, obs::EventKind::kAccessGrant);
}

TEST(ObsTrace, OverflowOverwritesOldestAndCountsDrops) {
  constexpr std::size_t kCapacity = 4;
  obs::TraceRecorder trace(kCapacity);
  for (std::uint64_t i = 0; i < 10; ++i) {
    trace.record_at(static_cast<double>(i), obs::EventKind::kRoundStart, 0, i);
  }
  EXPECT_EQ(trace.capacity(), kCapacity);
  EXPECT_EQ(trace.size(), kCapacity);
  EXPECT_EQ(trace.recorded(), 10u);
  EXPECT_EQ(trace.dropped(), 10u - kCapacity);
  // The retained window is the most recent events, oldest first.
  for (std::size_t i = 0; i < kCapacity; ++i) {
    EXPECT_EQ(trace.at(i).request, 10u - kCapacity + i) << "at(" << i << ")";
  }
}

TEST(ObsTrace, ClockPointerStampsRecords) {
  double now = 1.25;
  obs::TraceRecorder trace(4);
  trace.set_clock(&now);
  trace.record(obs::EventKind::kFaultInject, 1, 0);
  now = 2.5;
  trace.record(obs::EventKind::kFaultHeal, 1, 0);
  EXPECT_DOUBLE_EQ(trace.at(0).time, 1.25);
  EXPECT_DOUBLE_EQ(trace.at(1).time, 2.5);
  trace.set_clock(nullptr);
  trace.record(obs::EventKind::kFaultHeal, 2, 0);
  EXPECT_DOUBLE_EQ(trace.at(2).time, 0.0);
}

TEST(ObsTrace, ClearResetsEverything) {
  obs::TraceRecorder trace(2);
  trace.record_at(1.0, obs::EventKind::kQrInstall, 0, 1);
  trace.record_at(2.0, obs::EventKind::kQrAdopt, 1, 1);
  trace.record_at(3.0, obs::EventKind::kQrAdopt, 2, 1);
  trace.clear();
  EXPECT_EQ(trace.size(), 0u);
  EXPECT_EQ(trace.recorded(), 0u);
  EXPECT_EQ(trace.dropped(), 0u);
}

// --- trace text export -------------------------------------------------

TEST(ObsTrace, WriteTextMatchesDocumentedFormat) {
  obs::TraceRecorder trace(4);
  trace.record_at(0.125, obs::EventKind::kAccessDeny, 7, 42, 3, 4);
  std::ostringstream out;
  trace.write_text(out);
  EXPECT_EQ(out.str(), "0.125000000 access-deny 7 42 3 4\n");
}

TEST(ObsTrace, EveryEventKindHasAStableSlug) {
  for (std::size_t k = 0; k < obs::kEventKindCount; ++k) {
    const char* name = obs::event_kind_name(static_cast<obs::EventKind>(k));
    ASSERT_NE(name, nullptr);
    EXPECT_STRNE(name, "unknown") << "kind " << k;
  }
}

// --- Chrome trace_event JSON export ------------------------------------

/// Minimal structural validator: balanced {}/[] outside strings and a
/// rough token scan. Not a full JSON parser, but enough to catch broken
/// quoting or truncation in the exporter.
bool json_balanced(const std::string& text) {
  int braces = 0, brackets = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_string) {
      if (c == '\\') ++i;
      else if (c == '"') in_string = false;
      continue;
    }
    switch (c) {
      case '"': in_string = true; break;
      case '{': ++braces; break;
      case '}': --braces; break;
      case '[': ++brackets; break;
      case ']': --brackets; break;
      default: break;
    }
    if (braces < 0 || brackets < 0) return false;
  }
  return braces == 0 && brackets == 0 && !in_string;
}

std::size_t count_occurrences(const std::string& text, const std::string& sub) {
  std::size_t n = 0;
  for (std::size_t pos = text.find(sub); pos != std::string::npos;
       pos = text.find(sub, pos + sub.size())) {
    ++n;
  }
  return n;
}

TEST(ObsTrace, ChromeJsonIsStructurallyValid) {
  obs::TraceRecorder trace(16);
  trace.record_at(0.001, obs::EventKind::kAccessSubmit, 1, 10, 0, 1);
  trace.record_at(0.002, obs::EventKind::kRoundStart, 1, 10, 0, 1);
  trace.record_at(0.004, obs::EventKind::kRoundFinish, 1, 10, 0, 2);
  trace.record_at(0.004, obs::EventKind::kAccessGrant, 1, 10, 3, 1);
  trace.record_at(0.005, obs::EventKind::kTrackerRebuild, 0, 2, 31, 1);
  std::ostringstream out;
  trace.write_chrome_json(out);
  const std::string json = out.str();

  EXPECT_TRUE(json_balanced(json)) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos);
  // Rounds export as async begin/end pairs keyed by request id; the
  // other three events are thread-scoped instants.
  EXPECT_EQ(count_occurrences(json, "\"ph\": \"b\""), 1u);
  EXPECT_EQ(count_occurrences(json, "\"ph\": \"e\""), 1u);
  EXPECT_EQ(count_occurrences(json, "\"ph\": \"i\""), 3u);
  EXPECT_EQ(count_occurrences(json, "\"id\": 10"), 2u);
  // Timestamps are microseconds of simulated time: 0.001s -> 1000us.
  EXPECT_NE(json.find("\"ts\": 1000.000"), std::string::npos);
}

TEST(ObsTrace, ChromeJsonEmptyTraceIsValid) {
  obs::TraceRecorder trace(4);
  std::ostringstream out;
  trace.write_chrome_json(out);
  EXPECT_TRUE(json_balanced(out.str()));
  EXPECT_NE(out.str().find("\"traceEvents\""), std::string::npos);
}

} // namespace
} // namespace quora
