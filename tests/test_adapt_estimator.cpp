// Convergence oracle for the on-line f_i(v) estimator (src/adapt): long
// fixed-seed simulations of the three §4.2 topologies with closed forms —
// ring, fully connected, single bus — must drive the empirical,
// footnote-4-conditioned vote density to within a small L1 distance of
// the analytic density. This closes the loop between the paper's step 1
// (estimate f_i(v) from observations) and its §4.2 derivations.
//
// Sampling discipline: the tap records the submitting site's component
// vote total at Poisson access instants, and only while the site is
// operational. PASTA makes the access-instant sample an unbiased estimate
// of the time-average conditional density f(v | site up); the estimator's
// read-out multiplies back the operational probability (footnote 4:
// p * A' = A), which is what the unconditional closed forms describe.

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

#include "adapt/controller.hpp"
#include "adapt/estimator.hpp"
#include "core/component_dist.hpp"
#include "net/builders.hpp"
#include "sim/config.hpp"
#include "sim/simulator.hpp"

namespace quora::adapt {
namespace {

/// Records the component vote total of the submitting site at every
/// access instant, skipping instants where the site is down (a down site
/// observes nothing — the censoring the read-out undoes).
class HistogramTap : public sim::AccessObserver {
public:
  explicit HistogramTap(EmpiricalVoteHistogram* hist) : hist_(hist) {}
  void on_access(const sim::Simulator& sim,
                 const sim::AccessEvent& ev) override {
    if (sim.network().is_site_up(ev.site)) {
      hist_->record(ev.site, sim.tracker().component_votes(ev.site));
    }
  }

private:
  EmpiricalVoteHistogram* hist_;
};

/// Footnote-4 read-out over a caller-chosen subset of sites (the bus test
/// pools leaves but not the zero-vote hub, whose conditional density is
/// different).
core::VotePdf pooled_subset_pdf(const EmpiricalVoteHistogram& hist,
                                const std::vector<net::SiteId>& sites,
                                double p) {
  core::VotePdf pdf(hist.total_votes() + 1, 0.0);
  double n = 0.0;
  for (const net::SiteId s : sites) n += hist.samples(s);
  if (n == 0.0) {
    pdf[0] = 1.0 - p;
    pdf[hist.total_votes()] += p;
    return pdf;
  }
  for (net::Vote v = 0; v <= hist.total_votes(); ++v) {
    double c = 0.0;
    for (const net::SiteId s : sites) c += hist.count(s, v);
    pdf[v] = p * c / n;
  }
  pdf[0] += 1.0 - p;
  return pdf;
}

TEST(AdaptEstimator, RingConvergesToClosedForm) {
  constexpr std::uint32_t kSites = 101;
  constexpr double kRel = 0.96;
  const net::Topology topo = net::make_ring(kSites);

  sim::SimConfig config;  // paper defaults: rel .96, rho 1/128
  sim::Simulator sim(topo, config, sim::AccessSpec{}, /*seed=*/4242);
  sim.run_accesses(200'000);  // mix the failure processes to stationarity

  EmpiricalVoteHistogram hist(kSites, topo.total_votes());
  HistogramTap tap(&hist);
  sim.add_access_observer(&tap);
  sim.run_accesses(8'000'000);

  const core::VotePdf expected = core::ring_site_pdf(kSites, kRel, kRel);
  const core::VotePdf empirical = hist.pooled_pdf(kRel);
  ASSERT_TRUE(core::is_valid_pdf(empirical, 1e-9));
  // Measured at seed 4242: L1 ~ 0.01. The bound leaves slack for the
  // temporal correlation of the network state without letting a broken
  // conditioning (p*A' = A) slip through — dropping footnote 4 shifts
  // mass 1-p ~ 0.04 at v=0 alone.
  EXPECT_LT(l1_distance(empirical, expected), 0.03);
}

TEST(AdaptEstimator, FullyConnectedConvergesToClosedForm) {
  constexpr std::uint32_t kSites = 101;
  constexpr double kRel = 0.96;
  const net::Topology topo = net::make_fully_connected(kSites);

  sim::SimConfig config;
  sim::Simulator sim(topo, config, sim::AccessSpec{}, /*seed=*/777);
  sim.run_accesses(100'000);

  EmpiricalVoteHistogram hist(kSites, topo.total_votes());
  HistogramTap tap(&hist);
  sim.add_access_observer(&tap);
  sim.run_accesses(1'000'000);

  const core::VotePdf expected =
      core::fully_connected_site_pdf(kSites, kRel, kRel);
  const core::VotePdf empirical = hist.pooled_pdf(kRel);
  ASSERT_TRUE(core::is_valid_pdf(empirical, 1e-9));
  EXPECT_LT(l1_distance(empirical, expected), 0.03);
}

TEST(AdaptEstimator, SingleBusConvergesToClosedForm) {
  // §4.2 bus, sites-survive-bus architecture, simulated as a star whose
  // hub is the bus: the hub holds no votes, its links never fail, and bus
  // failure is hub failure. Leaves at p=.96, bus at r=.9 (less reliable
  // than the taps, so the bus-down mass at v=1 is clearly visible).
  constexpr std::uint32_t kLeaves = 32;
  constexpr double kLeafRel = 0.96;
  constexpr double kBusRel = 0.9;
  const net::Topology topo = net::make_star(kLeaves + 1, /*hub_votes=*/0);

  sim::SimConfig config;
  std::vector<double> site_rel(kLeaves + 1, kLeafRel);
  site_rel[0] = kBusRel;  // the hub is the bus
  const std::vector<double> link_rel(topo.link_count(), 1.0);
  const sim::FailureProfile profile =
      sim::FailureProfile::from_reliabilities(config, site_rel, link_rel);

  sim::Simulator sim(topo, config, sim::AccessSpec{}, profile, /*seed=*/31337);
  sim.run_accesses(100'000);

  EmpiricalVoteHistogram hist(kLeaves + 1, topo.total_votes());
  HistogramTap tap(&hist);
  sim.add_access_observer(&tap);
  sim.run_accesses(1'500'000);

  std::vector<net::SiteId> leaves;
  for (net::SiteId s = 1; s <= kLeaves; ++s) leaves.push_back(s);
  const core::VotePdf expected = core::bus_site_pdf(
      kLeaves, kLeafRel, kBusRel, core::BusArchitecture::kSitesSurviveBus);
  const core::VotePdf empirical = pooled_subset_pdf(hist, leaves, kLeafRel);
  ASSERT_TRUE(core::is_valid_pdf(empirical, 1e-9));
  EXPECT_LT(l1_distance(empirical, expected), 0.03);
}

// --- Unit coverage of the estimator itself (no simulation) ---

TEST(AdaptEstimator, Footnote4ConditioningSplitsMassExactly) {
  EmpiricalVoteHistogram hist(2, 3);
  // Site 0 observed components of 3, 3, 1 votes while up.
  hist.record(0, 3);
  hist.record(0, 3);
  hist.record(0, 1);
  const double p = 0.5;
  const core::VotePdf pdf = hist.site_pdf(0, p);
  // pdf[0] = (1-p) + p * c(0)/n = 0.5; pdf[1] = p/3; pdf[3] = 2p/3.
  EXPECT_NEAR(pdf[0], 0.5, 1e-12);
  EXPECT_NEAR(pdf[1], 0.5 / 3.0, 1e-12);
  EXPECT_NEAR(pdf[2], 0.0, 1e-12);
  EXPECT_NEAR(pdf[3], 1.0 / 3.0, 1e-12);
  EXPECT_TRUE(core::is_valid_pdf(pdf, 1e-12));
}

TEST(AdaptEstimator, EmptySiteFallsBackToPrior) {
  EmpiricalVoteHistogram hist(2, 5);
  const core::VotePdf pdf = hist.site_pdf(1, 0.96);
  EXPECT_NEAR(pdf[0], 0.04, 1e-12);
  EXPECT_NEAR(pdf[5], 0.96, 1e-12);
  EXPECT_TRUE(core::is_valid_pdf(pdf, 1e-12));
}

TEST(AdaptEstimator, PooledPdfIsTrafficWeighted) {
  EmpiricalVoteHistogram hist(2, 2);
  // Site 0 contributes three samples at v=2, site 1 one sample at v=1:
  // the pooled (uniform-traffic empirical mixture) density weights by
  // observation counts, the paper's r(v) = sum_i r_i f_i(v).
  hist.record(0, 2);
  hist.record(0, 2);
  hist.record(0, 2);
  hist.record(1, 1);
  const core::VotePdf pdf = hist.pooled_pdf(1.0);
  EXPECT_NEAR(pdf[1], 0.25, 1e-12);
  EXPECT_NEAR(pdf[2], 0.75, 1e-12);
}

TEST(AdaptEstimator, DecayForgetsOldRegime) {
  EmpiricalVoteHistogram hist(1, 1);
  for (int i = 0; i < 1000; ++i) hist.record(0, 1);
  hist.decay(0.01);  // near-total forgetting
  for (int i = 0; i < 90; ++i) hist.record(0, 0);
  const core::VotePdf pdf = hist.site_pdf(0, 1.0);
  EXPECT_GT(pdf[0], 0.85);  // new regime dominates despite 10x history
}

TEST(AdaptEstimator, RejectsOutOfDomainInput) {
  EXPECT_THROW(EmpiricalVoteHistogram(0, 3), std::invalid_argument);
  EXPECT_THROW(EmpiricalVoteHistogram(3, 0), std::invalid_argument);
  EmpiricalVoteHistogram hist(2, 3);
  EXPECT_THROW(hist.site_pdf(0, 0.0), std::invalid_argument);
  EXPECT_THROW(hist.site_pdf(0, 1.5), std::invalid_argument);
  EXPECT_THROW(hist.site_pdf(2, 0.5), std::out_of_range);
  EXPECT_THROW(hist.decay(-0.1), std::invalid_argument);
  EXPECT_THROW(hist.decay(1.5), std::invalid_argument);
}

// --- Controller hysteresis (deterministic, synthetic histograms) ---

/// Feeds the histogram so the empirical mixture is exactly `pdf`
/// (scaled counts; the conditioning with p=1 reproduces pdf verbatim).
void load_pdf(EmpiricalVoteHistogram& hist, const core::VotePdf& pdf,
              double scale = 1'000'000.0) {
  hist.reset();
  for (net::Vote v = 0; v < pdf.size(); ++v) {
    const double n = pdf[v] * scale;
    for (int i = 0; i < static_cast<int>(n + 0.5); ++i) hist.record(0, v);
  }
}

TEST(AdaptController, InstallsOnlyAfterDwellEpochsOverThreshold) {
  AdaptiveController::Options opts;
  opts.threshold = 0.01;
  opts.dwell = 3;
  opts.site_reliability = 1.0;
  opts.min_samples = 4.0;
  AdaptiveController ctl(1, 5, opts);

  // A density concentrated at 4-of-5 votes: at alpha = 0.1 (write-heavy)
  // the optimizer prefers a smaller q_w than read-one-write-all.
  core::VotePdf pdf(6, 0.0);
  pdf[4] = 0.9;
  pdf[5] = 0.1;
  load_pdf(ctl.histogram(), pdf, 100.0);

  const quorum::QuorumSpec frozen{1, 5};  // read-one-write-all
  AdaptiveController::Decision d1 = ctl.epoch(0.1, frozen);
  ASSERT_TRUE(d1.evaluated);
  EXPECT_GT(d1.predicted_gain, opts.threshold);
  EXPECT_FALSE(d1.install);
  EXPECT_EQ(d1.streak, 1u);

  load_pdf(ctl.histogram(), pdf, 100.0);  // epoch() decays; refill
  AdaptiveController::Decision d2 = ctl.epoch(0.1, frozen);
  EXPECT_FALSE(d2.install);
  EXPECT_EQ(d2.streak, 2u);

  load_pdf(ctl.histogram(), pdf, 100.0);
  AdaptiveController::Decision d3 = ctl.epoch(0.1, frozen);
  EXPECT_TRUE(d3.install);
  EXPECT_EQ(ctl.installs_recommended(), 1u);
}

TEST(AdaptController, SubThresholdEpochResetsStreak) {
  AdaptiveController::Options opts;
  opts.threshold = 0.01;
  opts.dwell = 2;
  opts.site_reliability = 1.0;
  opts.min_samples = 4.0;
  AdaptiveController ctl(1, 5, opts);

  core::VotePdf drifted(6, 0.0);
  drifted[4] = 0.9;
  drifted[5] = 0.1;
  core::VotePdf calm(6, 0.0);
  calm[5] = 1.0;  // everything up: every valid assignment is equivalent

  const quorum::QuorumSpec frozen{1, 5};
  load_pdf(ctl.histogram(), drifted, 100.0);
  EXPECT_EQ(ctl.epoch(0.1, frozen).streak, 1u);
  load_pdf(ctl.histogram(), calm, 100.0);
  EXPECT_EQ(ctl.epoch(0.1, frozen).streak, 0u);  // gain gone: reset
  load_pdf(ctl.histogram(), drifted, 100.0);
  EXPECT_EQ(ctl.epoch(0.1, frozen).streak, 1u);  // must re-earn the dwell
  EXPECT_EQ(ctl.installs_recommended(), 0u);
}

TEST(AdaptController, WarmupEpochsDoNotEvaluate) {
  AdaptiveController::Options opts;
  opts.min_samples = 64.0;
  AdaptiveController ctl(1, 3, opts);
  ctl.histogram().record(0, 3);  // far below min_samples
  const AdaptiveController::Decision d = ctl.epoch(0.5, quorum::QuorumSpec{2, 2});
  EXPECT_FALSE(d.evaluated);
  EXPECT_FALSE(d.install);
}

TEST(AdaptController, WriteConstrainedInfeasibleReportsAndHolds) {
  AdaptiveController::Options opts;
  opts.objective = AdaptiveController::Objective::kWriteConstrained;
  opts.min_write_availability = 0.99;  // unreachable under this mixture
  opts.site_reliability = 1.0;
  opts.min_samples = 4.0;
  AdaptiveController ctl(1, 5, opts);
  core::VotePdf pdf(6, 0.0);
  pdf[3] = 0.5;
  pdf[5] = 0.5;
  load_pdf(ctl.histogram(), pdf, 100.0);
  const AdaptiveController::Decision d = ctl.epoch(0.5, quorum::QuorumSpec{3, 3});
  ASSERT_TRUE(d.evaluated);
  EXPECT_FALSE(d.feasible);
  EXPECT_FALSE(d.install);
  EXPECT_EQ(d.streak, 0u);
}

TEST(AdaptController, OptionsValidateRejectsBadKnobs) {
  AdaptiveController::Options opts;
  opts.threshold = 1.5;
  EXPECT_THROW(opts.validate(), std::invalid_argument);
  opts = {};
  opts.dwell = 0;
  EXPECT_THROW(opts.validate(), std::invalid_argument);
  opts = {};
  opts.epoch_length = 0.0;
  EXPECT_THROW(opts.validate(), std::invalid_argument);
  opts = {};
  opts.site_reliability = 0.0;
  EXPECT_THROW(opts.validate(), std::invalid_argument);
  opts = {};
  opts.forget = 0.0;
  EXPECT_THROW(opts.validate(), std::invalid_argument);
  opts = {};
  EXPECT_NO_THROW(opts.validate());
}

} // namespace
} // namespace quora::adapt
