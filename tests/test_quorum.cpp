// Tests for the quorum consensus protocol: assignment validity (the §2.1
// consistency conditions), the decision engine over partitioned networks,
// and the replicated store's one-copy-serializability invariant under
// randomized failure histories.

#include <gtest/gtest.h>

#include <stdexcept>

#include "conn/component_tracker.hpp"
#include "conn/live_network.hpp"
#include "net/builders.hpp"
#include "quorum/protocols.hpp"
#include "quorum/quorum_spec.hpp"
#include "quorum/replicated_store.hpp"
#include "rng/distributions.hpp"
#include "rng/xoshiro256ss.hpp"

namespace quora::quorum {
namespace {

TEST(QuorumSpec, ConsistencyConditions) {
  // T = 10. Condition 1: q_r + q_w > 10; condition 2: q_w > 5.
  EXPECT_TRUE((QuorumSpec{1, 10}.valid(10)));
  EXPECT_TRUE((QuorumSpec{5, 6}.valid(10)));
  EXPECT_TRUE((QuorumSpec{6, 6}.valid(10)));   // valid, just restrictive
  EXPECT_FALSE((QuorumSpec{4, 6}.valid(10)));  // 4+6 = T, reads may miss writes
  EXPECT_FALSE((QuorumSpec{6, 5}.valid(10)));  // q_w = T/2, split-brain writes
  EXPECT_FALSE((QuorumSpec{0, 10}.valid(10)));
  EXPECT_FALSE((QuorumSpec{1, 11}.valid(10)));
  EXPECT_FALSE((QuorumSpec{11, 10}.valid(10)));
}

TEST(QuorumSpec, GrantPredicates) {
  const QuorumSpec spec{3, 8};
  EXPECT_FALSE(spec.allows_read(2));
  EXPECT_TRUE(spec.allows_read(3));
  EXPECT_TRUE(spec.allows_read(10));
  EXPECT_FALSE(spec.allows_write(7));
  EXPECT_TRUE(spec.allows_write(8));
}

TEST(QuorumSpec, FromReadQuorumComplement) {
  for (net::Vote t : {2u, 7u, 100u, 101u}) {
    for (net::Vote q = 1; q <= max_read_quorum(t); ++q) {
      const QuorumSpec spec = from_read_quorum(t, q);
      EXPECT_EQ(spec.q_r + spec.q_w, t + 1);  // condition 1 saturated
      EXPECT_TRUE(spec.valid(t)) << "t=" << t << " q=" << q;
    }
  }
  EXPECT_THROW(from_read_quorum(10, 0), std::invalid_argument);
  EXPECT_THROW(from_read_quorum(10, 6), std::invalid_argument);
  EXPECT_THROW(from_read_quorum(0, 1), std::invalid_argument);
}

TEST(QuorumSpec, NamedInstances) {
  // Strict majority is valid for both parities (see the header note on
  // why the paper's floor/floor+1 form fails condition 1 for odd T).
  EXPECT_EQ(majority(101), (QuorumSpec{51, 51}));
  EXPECT_TRUE(majority(101).valid(101));
  EXPECT_EQ(majority(100), (QuorumSpec{51, 51}));
  EXPECT_TRUE(majority(100).valid(100));
  EXPECT_FALSE((QuorumSpec{50, 51}.valid(101)));  // the odd-T pitfall

  EXPECT_EQ(read_one_write_all(101), (QuorumSpec{1, 101}));
  EXPECT_TRUE(read_one_write_all(101).valid(101));
  EXPECT_EQ(max_read_quorum(101), 50u);
  EXPECT_EQ(max_read_quorum(100), 50u);
  EXPECT_THROW(majority(1), std::invalid_argument);
}

class PartitionedRing : public ::testing::Test {
protected:
  PartitionedRing()
      : topo_(net::make_ring(10)), live_(topo_), tracker_(live_) {
    // Cut links {0,1} and {4,5}: components {1,2,3,4} and {5,...,9,0}.
    live_.set_link_up(0, false);
    live_.set_link_up(4, false);
  }
  net::Topology topo_;
  conn::LiveNetwork live_;
  conn::ComponentTracker tracker_;
};

TEST_F(PartitionedRing, MajoritySideCanWriteMinorityCannot) {
  const QuorumConsensus qc(topo_, QuorumSpec{5, 6});
  // {5..9,0} has 6 votes; {1..4} has 4.
  EXPECT_TRUE(qc.request(tracker_, 7, AccessType::kWrite).granted);
  EXPECT_FALSE(qc.request(tracker_, 2, AccessType::kWrite).granted);
  EXPECT_TRUE(qc.request(tracker_, 7, AccessType::kRead).granted);
  EXPECT_FALSE(qc.request(tracker_, 2, AccessType::kRead).granted);
  EXPECT_EQ(qc.request(tracker_, 2, AccessType::kRead).votes_collected, 4u);
}

TEST_F(PartitionedRing, SmallReadQuorumServesBothSides) {
  const QuorumConsensus qc(topo_, QuorumSpec{3, 8});
  EXPECT_TRUE(qc.request(tracker_, 2, AccessType::kRead).granted);
  EXPECT_TRUE(qc.request(tracker_, 7, AccessType::kRead).granted);
  // Neither side reaches q_w = 8.
  EXPECT_FALSE(qc.request(tracker_, 2, AccessType::kWrite).granted);
  EXPECT_FALSE(qc.request(tracker_, 7, AccessType::kWrite).granted);
}

TEST_F(PartitionedRing, DownOriginIsDenied) {
  const QuorumConsensus qc(topo_, QuorumSpec{1, 10});
  live_.set_site_up(7, false);
  const Decision d = qc.request(tracker_, 7, AccessType::kRead);
  EXPECT_FALSE(d.granted);
  EXPECT_EQ(d.votes_collected, 0u);
}

TEST(QuorumConsensus, RejectsInvalidSpec) {
  const net::Topology topo = net::make_ring(10);
  EXPECT_THROW(QuorumConsensus(topo, QuorumSpec{4, 6}), std::invalid_argument);
  QuorumConsensus qc(topo, QuorumSpec{5, 6});
  EXPECT_THROW(qc.set_spec(QuorumSpec{5, 5}), std::invalid_argument);
  EXPECT_NO_THROW(qc.set_spec(QuorumSpec{1, 10}));
  EXPECT_EQ(qc.spec().q_w, 10u);
}

TEST(PrimaryCopy, VotesConcentrateAtPrimary) {
  const auto votes = primary_copy_votes(6, 2);
  const net::Topology topo("pc", 6,
                           {net::Link{0, 1}, net::Link{1, 2}, net::Link{2, 3},
                            net::Link{3, 4}, net::Link{4, 5}},
                           votes);
  conn::LiveNetwork live(topo);
  const conn::ComponentTracker tracker(live);
  const QuorumConsensus qc(topo, QuorumSpec{1, 1});

  // Any site connected to the primary may access...
  EXPECT_TRUE(qc.request(tracker, 5, AccessType::kWrite).granted);
  // ...but a component without the primary cannot, even if large.
  live.set_link_up(2, false);  // cut {2,3}: primary side is {0,1,2}
  EXPECT_TRUE(qc.request(tracker, 0, AccessType::kWrite).granted);
  EXPECT_FALSE(qc.request(tracker, 4, AccessType::kWrite).granted);
  EXPECT_THROW(primary_copy_votes(6, 6), std::invalid_argument);
}

TEST(ReplicatedStore, WriteInstallsEverywhereInComponent) {
  const net::Topology topo = net::make_ring(5);
  conn::LiveNetwork live(topo);
  const conn::ComponentTracker tracker(live);
  ReplicatedStore store(topo);
  const QuorumSpec spec{2, 4};

  const auto w = store.write(tracker, spec, 0, 42);
  EXPECT_TRUE(w.granted);
  EXPECT_EQ(w.version, 1u);
  for (net::SiteId s = 0; s < 5; ++s) {
    EXPECT_EQ(store.copy_at(s).value, 42u);
    EXPECT_EQ(store.copy_at(s).version, 1u);
  }
}

TEST(ReplicatedStore, MinorityWriteDenied) {
  const net::Topology topo = net::make_ring(5);
  conn::LiveNetwork live(topo);
  const conn::ComponentTracker tracker(live);
  ReplicatedStore store(topo);
  const QuorumSpec spec{2, 4};

  live.set_link_up(0, false);  // cut {0,1}
  live.set_link_up(2, false);  // cut {2,3}: components {1,2} and {3,4,0}
  EXPECT_FALSE(store.write(tracker, spec, 1, 7).granted);
  EXPECT_EQ(store.committed_version(), 0u);
}

TEST(ReplicatedStore, PartitionDeniesTheWriteThatWouldGoStale) {
  // Condition 1 at work: after cutting the ring into {1,2} and {3,4,0},
  // the larger side holds only 3 of 5 votes — short of q_w = 4 — so the
  // write that a stale {1,2}-side read could otherwise miss is denied.
  const net::Topology topo = net::make_ring(5);
  conn::LiveNetwork live(topo);
  const conn::ComponentTracker tracker(live);
  ReplicatedStore store(topo);
  const QuorumSpec spec{2, 4};
  ASSERT_TRUE(store.write(tracker, spec, 0, 1).granted);
  live.set_link_up(0, false);
  live.set_link_up(2, false);
  EXPECT_FALSE(store.write(tracker, spec, 3, 2).granted);
  // And the small side's granted read correctly sees version 1.
  const auto r = store.read(tracker, spec, 1);
  ASSERT_TRUE(r.granted);
  EXPECT_TRUE(r.current);
  EXPECT_EQ(r.version, 1u);
}

/// The crown-jewel invariant: under ANY valid (q_r, q_w) and ANY sequence
/// of failures/recoveries, every granted read returns the most recently
/// committed version (one-copy serializability, §2.1's conditions at
/// work).
TEST(ReplicatedStore, OneCopySerializabilityUnderRandomHistories) {
  rng::Xoshiro256ss gen(20260707);
  const net::Topology topo = net::make_ring_with_chords(11, 3);
  const net::Vote total = topo.total_votes();

  for (net::Vote q_r = 1; q_r <= max_read_quorum(total); ++q_r) {
    const QuorumSpec spec = from_read_quorum(total, q_r);
    conn::LiveNetwork live(topo);
    const conn::ComponentTracker tracker(live);
    ReplicatedStore store(topo);
    std::uint64_t next_value = 100;
    std::uint64_t granted_reads = 0;

    for (int step = 0; step < 4000; ++step) {
      const double u = gen.next_double();
      if (u < 0.35) {
        // Toggle a random site.
        const auto s =
            static_cast<net::SiteId>(rng::uniform_index(gen, topo.site_count()));
        live.set_site_up(s, !live.is_site_up(s));
      } else if (u < 0.60) {
        const auto l =
            static_cast<net::LinkId>(rng::uniform_index(gen, topo.link_count()));
        live.set_link_up(l, !live.is_link_up(l));
      } else if (u < 0.80) {
        const auto origin =
            static_cast<net::SiteId>(rng::uniform_index(gen, topo.site_count()));
        store.write(tracker, spec, origin, next_value++);
      } else {
        const auto origin =
            static_cast<net::SiteId>(rng::uniform_index(gen, topo.site_count()));
        const auto r = store.read(tracker, spec, origin);
        if (r.granted) {
          ++granted_reads;
          EXPECT_TRUE(r.current)
              << "STALE READ: q_r=" << q_r << " step=" << step << " saw version "
              << r.version << " latest " << store.committed_version();
        }
      }
    }
    EXPECT_GT(granted_reads, 0u) << "q_r=" << q_r << ": vacuous run";
  }
}

/// Sanity-check the checker: an INVALID assignment (q_r + q_w = T) must
/// actually produce stale reads under partition — otherwise the invariant
/// test above proves nothing.
TEST(ReplicatedStore, InvalidAssignmentProducesStaleReads) {
  const net::Topology topo = net::make_ring(10);
  conn::LiveNetwork live(topo);
  const conn::ComponentTracker tracker(live);
  ReplicatedStore store(topo);
  const QuorumSpec bad{4, 6};  // q_r + q_w = T: breaks condition 1
  ASSERT_FALSE(bad.valid(10));

  ASSERT_TRUE(store.write(tracker, bad, 0, 1).granted);
  live.set_link_up(0, false);
  live.set_link_up(4, false);  // {1..4} (4 votes) vs {5..9,0} (6 votes)
  ASSERT_TRUE(store.write(tracker, bad, 7, 2).granted);  // 6 >= q_w
  const auto r = store.read(tracker, bad, 2);            // 4 >= q_r
  ASSERT_TRUE(r.granted);
  EXPECT_FALSE(r.current);  // misses version 2 — the guaranteed anomaly
  EXPECT_EQ(r.version, 1u);
}

} // namespace
} // namespace quora::quorum
