// Contract macro semantics: live checks abort with a diagnostic in Debug
// and sanitizer builds, and compile out entirely (including the guarded
// expression) in Release. The suite is build-type aware via
// quora::contracts::kActive, so it is meaningful under every preset.

#include "core/contracts.hpp"

#include <gtest/gtest.h>

#include "core/availability.hpp"
#include "core/component_dist.hpp"

namespace {

using quora::contracts::kActive;

TEST(Contracts, PassingChecksAreSilent) {
  QUORA_ASSERT(1 + 1 == 2, "arithmetic works");
  QUORA_INVARIANT(true, "trivially holds");
  QUORA_PRECONDITION(2 > 1, "trivially holds");
  SUCCEED();
}

TEST(Contracts, ActiveFlagMatchesMacroState) {
  int evaluations = 0;
  const auto probe = [&evaluations]() {
    ++evaluations;
    return true;
  };
  QUORA_ASSERT(probe(), "probe must pass when evaluated");
  // Live contracts evaluate the expression exactly once; compiled-out
  // contracts must not evaluate it at all.
  EXPECT_EQ(evaluations, kActive ? 1 : 0);
}

TEST(ContractsDeathTest, AssertAbortsWithDiagnosticWhenActive) {
  if (!kActive) {
    QUORA_ASSERT(false, "compiled out: must not fire");
    SUCCEED();
    return;
  }
  EXPECT_DEATH(QUORA_ASSERT(false, "assert message"), "assertion failed");
}

TEST(ContractsDeathTest, InvariantAbortsWithDiagnosticWhenActive) {
  if (!kActive) {
    QUORA_INVARIANT(false, "compiled out: must not fire");
    SUCCEED();
    return;
  }
  EXPECT_DEATH(QUORA_INVARIANT(2 + 2 == 5, "invariant message"),
               "invariant failed");
}

TEST(ContractsDeathTest, PreconditionAbortsWithDiagnosticWhenActive) {
  if (!kActive) {
    QUORA_PRECONDITION(false, "compiled out: must not fire");
    SUCCEED();
    return;
  }
  EXPECT_DEATH(QUORA_PRECONDITION(false, "precondition message"),
               "precondition failed");
}

// A library-level invariant actually wired through the hot paths: the
// AvailabilityCurve constructor rejects mixtures that are not densities.
TEST(ContractsDeathTest, NonDensityMixtureTripsLibraryInvariant) {
  const quora::core::VotePdf bogus{0.5, 0.1, 0.1};  // sums to 0.7
  if (!kActive) {
    const quora::core::AvailabilityCurve curve(bogus);
    EXPECT_NEAR(curve.read_tail(0), 0.7, 1e-12);  // Release: garbage in...
    return;
  }
  EXPECT_DEATH({ const quora::core::AvailabilityCurve curve(bogus); },
               "must be a probability density");
}

TEST(ContractsDeathTest, MixtureMassLossTripsInvariant) {
  using quora::core::VotePdf;
  const std::vector<VotePdf> pdfs{VotePdf{0.5, 0.5, 0.0}, VotePdf{0.2, 0.3, 0.5}};
  // Weights summing to 1 is an API precondition (thrown), so a weight
  // vector that passes validation cannot lose mass; exercise the passing
  // path here and the throwing path for bad weights.
  const auto mixed = quora::core::mix_pdfs(pdfs, {0.25, 0.75});
  EXPECT_TRUE(quora::core::is_valid_pdf(mixed));
  EXPECT_THROW(quora::core::mix_pdfs(pdfs, {0.25, 0.25}), std::invalid_argument);
}

} // namespace
