// Tests for the coterie-driven protocol engine and the classic non-vote
// coterie constructions (tree quorums, grid bicoterie).

#include <gtest/gtest.h>

#include <stdexcept>

#include "conn/component_tracker.hpp"
#include "conn/live_network.hpp"
#include "net/builders.hpp"
#include "quorum/coterie.hpp"
#include "quorum/coterie_protocol.hpp"
#include "quorum/protocols.hpp"
#include "rng/distributions.hpp"
#include "rng/xoshiro256ss.hpp"

namespace quora::quorum {
namespace {

TEST(CoterieProtocol, RejectsInconsistentBicoterie) {
  const net::Topology topo = net::make_ring(5);
  const Coterie singles({SiteSet{1} << 0});
  const Coterie disjoint({SiteSet{1} << 1});
  EXPECT_THROW(CoterieProtocol(topo, singles, disjoint), std::invalid_argument);
}

TEST(CoterieProtocol, VoteDerivedMatchesQuorumConsensusExactly) {
  // The bridge test for footnote 1: on every reachable partition state,
  // the vote-derived bicoterie decides exactly like weighted voting.
  const net::Topology topo = net::make_ring_with_chords(9, 2);
  const net::Vote total = topo.total_votes();
  rng::Xoshiro256ss gen(99);

  for (net::Vote q_r = 1; q_r <= max_read_quorum(total); ++q_r) {
    const QuorumSpec spec = from_read_quorum(total, q_r);
    const QuorumConsensus votes_engine(topo, spec);
    const CoterieProtocol coterie_engine = make_vote_coterie_protocol(topo, spec);

    conn::LiveNetwork live(topo);
    const conn::ComponentTracker tracker(live);
    for (int step = 0; step < 1500; ++step) {
      if (rng::bernoulli(gen, 0.5)) {
        const auto s =
            static_cast<net::SiteId>(rng::uniform_index(gen, topo.site_count()));
        live.set_site_up(s, !live.is_site_up(s));
      } else {
        const auto l =
            static_cast<net::LinkId>(rng::uniform_index(gen, topo.link_count()));
        live.set_link_up(l, !live.is_link_up(l));
      }
      const auto origin =
          static_cast<net::SiteId>(rng::uniform_index(gen, topo.site_count()));
      for (const auto type : {AccessType::kRead, AccessType::kWrite}) {
        EXPECT_EQ(votes_engine.request(tracker, origin, type).granted,
                  coterie_engine.request(tracker, origin, type).granted)
            << "q_r=" << q_r << " step=" << step;
      }
    }
  }
}

TEST(CoterieProtocol, WeightedVotesAlsoMatch) {
  // Non-uniform votes: 3 votes at site 0, 1 elsewhere; T = 7.
  const net::Topology topo("w", 5,
                           {net::Link{0, 1}, net::Link{1, 2}, net::Link{2, 3},
                            net::Link{3, 4}, net::Link{4, 0}},
                           std::vector<net::Vote>{3, 1, 1, 1, 1});
  const QuorumSpec spec{3, 5};
  const QuorumConsensus votes_engine(topo, spec);
  const CoterieProtocol coterie_engine = make_vote_coterie_protocol(topo, spec);

  conn::LiveNetwork live(topo);
  const conn::ComponentTracker tracker(live);
  rng::Xoshiro256ss gen(7);
  for (int step = 0; step < 2000; ++step) {
    const auto l =
        static_cast<net::LinkId>(rng::uniform_index(gen, topo.link_count()));
    live.set_link_up(l, !live.is_link_up(l));
    const auto origin =
        static_cast<net::SiteId>(rng::uniform_index(gen, topo.site_count()));
    for (const auto type : {AccessType::kRead, AccessType::kWrite}) {
      EXPECT_EQ(votes_engine.request(tracker, origin, type).granted,
                coterie_engine.request(tracker, origin, type).granted);
    }
  }
}

TEST(CoterieProtocol, DownOriginDenied) {
  const net::Topology topo = net::make_ring(5);
  const CoterieProtocol engine =
      make_vote_coterie_protocol(topo, QuorumSpec{2, 4});
  conn::LiveNetwork live(topo);
  const conn::ComponentTracker tracker(live);
  live.set_site_up(2, false);
  EXPECT_FALSE(engine.request(tracker, 2, AccessType::kRead).granted);
  EXPECT_EQ(engine.component_set(tracker, 2), 0u);
}

TEST(TreeCoterie, IsACoterie) {
  for (const std::uint32_t depth : {1u, 2u, 3u, 4u}) {
    const Coterie c = tree_coterie(depth);
    EXPECT_TRUE(c.is_coterie()) << "depth=" << depth;
  }
  EXPECT_THROW(tree_coterie(0), std::invalid_argument);
  EXPECT_THROW(tree_coterie(5), std::invalid_argument);
}

TEST(TreeCoterie, DepthTwoStructure) {
  // 3 sites {root=0, 1, 2}: quorums {0,1}, {0,2}, {1,2} — the majority
  // coterie (tree and majority coincide at this size).
  const Coterie c = tree_coterie(2);
  EXPECT_EQ(c.quorums().size(), 3u);
  EXPECT_TRUE(c.can_operate((SiteSet{1} << 1) | (SiteSet{1} << 2)));
  EXPECT_FALSE(c.can_operate(SiteSet{1} << 0));
}

TEST(TreeCoterie, RootPathIsSmallestQuorum) {
  // Depth 3 (7 sites): the cheapest quorum is a root-to-leaf path of 3
  // sites — strictly smaller than any majority of 7 (which needs 4).
  const Coterie c = tree_coterie(3);
  int smallest = 7;
  for (const SiteSet q : c.quorums()) smallest = std::min(smallest, popcount(q));
  EXPECT_EQ(smallest, 3);
  // And therefore this coterie is NOT derivable from uniform votes: two
  // equal-size site sets get different answers — {0,1,3} (a root path
  // plus sibling) operates, {3,4,5} (leaves missing a right-subtree
  // quorum) does not. A vote threshold cannot tell same-size sets apart.
  EXPECT_TRUE(c.can_operate((SiteSet{1} << 0) | (SiteSet{1} << 1) |
                            (SiteSet{1} << 3)));
  EXPECT_FALSE(c.can_operate((SiteSet{1} << 3) | (SiteSet{1} << 4) |
                             (SiteSet{1} << 5)));
  // When the root dies the protocol degrades gracefully: both subtrees
  // together still form quorums — all four leaves suffice.
  EXPECT_TRUE(c.can_operate((SiteSet{1} << 3) | (SiteSet{1} << 4) |
                            (SiteSet{1} << 5) | (SiteSet{1} << 6)));
}

TEST(GridBicoterie, IsConsistent) {
  for (const auto& [rows, cols] :
       {std::pair{2u, 2u}, std::pair{3u, 3u}, std::pair{4u, 3u}}) {
    const GridBicoterie grid = grid_bicoterie(rows, cols);
    EXPECT_TRUE(bicoterie_consistent(grid.read, grid.write))
        << rows << "x" << cols;
    EXPECT_TRUE(grid.write.is_coterie());
  }
  EXPECT_THROW(grid_bicoterie(0, 3), std::invalid_argument);
  EXPECT_THROW(grid_bicoterie(9, 9), std::invalid_argument);
}

TEST(GridBicoterie, QuorumSizesAreSublinear) {
  const GridBicoterie grid = grid_bicoterie(3, 3);
  for (const SiteSet q : grid.read.quorums()) EXPECT_EQ(popcount(q), 3);
  for (const SiteSet q : grid.write.quorums()) EXPECT_EQ(popcount(q), 5);
}

TEST(GridBicoterie, ReadsCoverColumnsWritesOwnAColumn) {
  const GridBicoterie grid = grid_bicoterie(2, 2);
  // Sites: 0 1 / 2 3 (row-major). Reads: one of {0,2} and one of {1,3}.
  EXPECT_TRUE(grid.read.can_operate((SiteSet{1} << 0) | (SiteSet{1} << 3)));
  EXPECT_FALSE(grid.read.can_operate((SiteSet{1} << 0) | (SiteSet{1} << 2)));
  // Writes: a full column plus a cover — e.g. {0,2} + {1}.
  EXPECT_TRUE(grid.write.can_operate((SiteSet{1} << 0) | (SiteSet{1} << 2) |
                                     (SiteSet{1} << 1)));
  EXPECT_FALSE(grid.write.can_operate((SiteSet{1} << 0) | (SiteSet{1} << 1)));
}

TEST(GridBicoterie, DrivesTheProtocolEngine) {
  // 3x3 grid bicoterie running on a 9-site network.
  const net::Topology topo = net::make_fully_connected(9);
  const GridBicoterie grid = grid_bicoterie(3, 3);
  const CoterieProtocol engine(topo, grid.read, grid.write);

  conn::LiveNetwork live(topo);
  const conn::ComponentTracker tracker(live);
  EXPECT_TRUE(engine.request(tracker, 0, AccessType::kRead).granted);
  EXPECT_TRUE(engine.request(tracker, 0, AccessType::kWrite).granted);

  // Kill a full row (sites 0,1,2): reads survive (cover via other rows),
  // writes survive too (columns still complete? no — every column lost
  // its row-0 member, so no full column remains... columns are {0,3,6},
  // {1,4,7}, {2,5,8}: losing row 0 kills all full columns).
  live.set_site_up(0, false);
  live.set_site_up(1, false);
  live.set_site_up(2, false);
  EXPECT_TRUE(engine.request(tracker, 4, AccessType::kRead).granted);
  EXPECT_FALSE(engine.request(tracker, 4, AccessType::kWrite).granted);
}

} // namespace
} // namespace quora::quorum
