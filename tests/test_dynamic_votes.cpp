// Tests for dynamic vote reassignment (Barbara/Garcia-Molina/Spauster
// style — paper references [4, 5]).

#include <gtest/gtest.h>

#include <set>

#include "conn/component_tracker.hpp"
#include "conn/live_network.hpp"
#include "dyn/dynamic_votes.hpp"
#include "net/builders.hpp"
#include "rng/distributions.hpp"
#include "rng/xoshiro256ss.hpp"

namespace quora::dyn {
namespace {

TEST(DynamicVotes, InitialStateMirrorsTopologyVotes) {
  const net::Topology topo("w", 4, {net::Link{0, 1}, net::Link{1, 2},
                                    net::Link{2, 3}},
                           std::vector<net::Vote>{2, 1, 1, 1});
  const DynamicVotes dv(topo);
  EXPECT_EQ(dv.latest_version(), 1u);
  EXPECT_EQ(dv.stored(0).votes[0], 2u);
  EXPECT_EQ(DynamicVotes::total_of(dv.stored(0).votes), 5u);
}

TEST(DynamicVotes, MajorityRuleDecides) {
  const net::Topology topo = net::make_ring(5);
  conn::LiveNetwork live(topo);
  const conn::ComponentTracker tracker(live);
  DynamicVotes dv(topo);

  EXPECT_TRUE(dv.request(tracker, 0).granted);  // 5 of 5
  // {1,2} vs {3,4,0}.
  live.set_link_up(0, false);
  live.set_link_up(2, false);
  EXPECT_FALSE(dv.request(tracker, 1).granted);  // 2 of 5
  EXPECT_TRUE(dv.request(tracker, 3).granted);   // 3 of 5
  live.set_site_up(2, false);
  EXPECT_FALSE(dv.request(tracker, 2).granted);  // down origin
}

TEST(DynamicVotes, OverthrowRestoresAvailabilityAfterFailures) {
  const net::Topology topo = net::make_ring(7);
  conn::LiveNetwork live(topo);
  const conn::ComponentTracker tracker(live);
  DynamicVotes dv(topo);

  // Three of seven sites die: the survivors {0,1,2,3} keep a majority and
  // overthrow the dead sites' votes.
  live.set_site_up(4, false);
  live.set_site_up(5, false);
  live.set_site_up(6, false);
  ASSERT_TRUE(dv.request(tracker, 0).granted);  // 4 of 7
  const auto votes = dv.overthrow_votes(tracker, 0);
  EXPECT_EQ(votes[4], 0u);
  EXPECT_EQ(DynamicVotes::total_of(votes) % 2, 1u);  // odd by construction
  ASSERT_TRUE(dv.try_install(tracker, 0, votes));
  EXPECT_EQ(dv.latest_version(), 2u);

  // Now two MORE sites die; {0,1} would be 2 of 7 under static votes, but
  // under the new vector (total 5, members hold >= 3) they still act.
  live.set_site_up(2, false);
  live.set_site_up(3, false);
  const auto d = dv.request(tracker, 0);
  EXPECT_TRUE(d.granted) << "votes collected: " << d.votes_collected;
}

TEST(DynamicVotes, MinorityCannotInstall) {
  const net::Topology topo = net::make_ring(5);
  conn::LiveNetwork live(topo);
  const conn::ComponentTracker tracker(live);
  DynamicVotes dv(topo);
  live.set_link_up(0, false);
  live.set_link_up(2, false);  // {1,2} minority
  EXPECT_FALSE(dv.try_install(tracker, 1, dv.overthrow_votes(tracker, 1)));
  EXPECT_EQ(dv.latest_version(), 1u);
}

TEST(DynamicVotes, RejectsDegenerateInstalls) {
  const net::Topology topo = net::make_ring(5);
  conn::LiveNetwork live(topo);
  const conn::ComponentTracker tracker(live);
  DynamicVotes dv(topo);
  EXPECT_FALSE(dv.try_install(tracker, 0, std::vector<net::Vote>(4, 1)));  // size
  EXPECT_FALSE(dv.try_install(tracker, 0, std::vector<net::Vote>(5, 0)));  // zero
  EXPECT_FALSE(dv.try_install(tracker, 0, dv.stored(0).votes));            // no-op
}

TEST(DynamicVotes, StaleVectorSideStaysBlocked) {
  const net::Topology topo = net::make_ring(7);
  conn::LiveNetwork live(topo);
  const conn::ComponentTracker tracker(live);
  DynamicVotes dv(topo);

  // {2,3} separates BEFORE the overthrow; it still holds the version-1
  // vector under which 2 of 7 is no majority — and the installing side's
  // new vector is unknown to it. It must stay blocked.
  live.set_link_up(1, false);  // cut {1,2}
  live.set_link_up(3, false);  // cut {3,4}
  ASSERT_TRUE(dv.request(tracker, 5).granted);  // {4,5,6,0,1}: 5 of 7
  ASSERT_TRUE(dv.try_install(tracker, 5, dv.overthrow_votes(tracker, 5)));
  EXPECT_FALSE(dv.request(tracker, 2).granted);
  EXPECT_EQ(dv.effective(tracker, 2).version, 1u);
}

/// Mutual exclusion under arbitrary histories: at any instant, at most one
/// component may be granted (the guarantee vote reassignment must never
/// break while chasing availability).
TEST(DynamicVotes, NeverTwoConcurrentWriteCapableComponents) {
  rng::Xoshiro256ss gen(0x5151);
  const net::Topology topo = net::make_ring_with_chords(11, 2);
  conn::LiveNetwork live(topo);
  const conn::ComponentTracker tracker(live);
  DynamicVotes dv(topo);
  std::uint64_t installs = 0;
  std::uint64_t granted_checks = 0;

  for (int step = 0; step < 20'000; ++step) {
    const double u = gen.next_double();
    if (u < 0.08) {
      live.set_site_up(
          static_cast<net::SiteId>(rng::uniform_index(gen, topo.site_count())),
          false);
    } else if (u < 0.24) {
      live.set_site_up(
          static_cast<net::SiteId>(rng::uniform_index(gen, topo.site_count())),
          true);
    } else if (u < 0.32) {
      live.set_link_up(
          static_cast<net::LinkId>(rng::uniform_index(gen, topo.link_count())),
          false);
    } else if (u < 0.48) {
      live.set_link_up(
          static_cast<net::LinkId>(rng::uniform_index(gen, topo.link_count())),
          true);
    } else if (u < 0.58) {
      const auto origin =
          static_cast<net::SiteId>(rng::uniform_index(gen, topo.site_count()));
      installs += dv.try_install(tracker, origin,
                                 dv.overthrow_votes(tracker, origin));
    } else {
      // Safety sweep: count distinct components whose request is granted.
      std::set<std::int32_t> granted_components;
      for (net::SiteId s = 0; s < topo.site_count(); ++s) {
        if (dv.request(tracker, s).granted) {
          granted_components.insert(tracker.component_of(s));
          ++granted_checks;
        }
      }
      ASSERT_LE(granted_components.size(), 1u) << "split brain at step " << step;
    }
  }
  EXPECT_GT(installs, 50u);
  EXPECT_GT(granted_checks, 1'000u);
}

} // namespace
} // namespace quora::dyn
