// Tests for the network model: topology validation, CSR adjacency, and
// every builder — in particular the paper's Topology-k family and the
// deterministic chord placement that substitutes for the unavailable
// companion report (DESIGN.md §4).

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>
#include <stdexcept>

#include "net/builders.hpp"
#include "net/topology.hpp"

namespace quora::net {
namespace {

TEST(Topology, ValidatesInput) {
  EXPECT_THROW(Topology("t", 0, {}), std::invalid_argument);
  EXPECT_THROW(Topology("t", 3, {Link{0, 3}}), std::invalid_argument);
  EXPECT_THROW(Topology("t", 3, {Link{1, 1}}), std::invalid_argument);
  EXPECT_THROW(Topology("t", 3, {Link{0, 1}, Link{1, 0}}), std::invalid_argument);
  EXPECT_THROW(Topology("t", 3, {}, std::vector<Vote>{1, 1}), std::invalid_argument);
}

TEST(Topology, AdjacencyIsSymmetricAndComplete) {
  const Topology t("t", 4, {Link{0, 1}, Link{1, 2}, Link{2, 3}, Link{3, 0},
                            Link{0, 2}});
  EXPECT_EQ(t.site_count(), 4u);
  EXPECT_EQ(t.link_count(), 5u);
  EXPECT_EQ(t.degree(0), 3u);
  EXPECT_EQ(t.degree(1), 2u);
  EXPECT_EQ(t.degree(3), 2u);

  // Every link appears in both endpoints' adjacency with its own id.
  for (LinkId id = 0; id < t.link_count(); ++id) {
    const Link& l = t.link(id);
    const auto has = [&](SiteId from, SiteId to) {
      const auto adj = t.neighbors(from);
      return std::any_of(adj.begin(), adj.end(), [&](const Topology::Edge& e) {
        return e.neighbor == to && e.link == id;
      });
    };
    EXPECT_TRUE(has(l.a, l.b));
    EXPECT_TRUE(has(l.b, l.a));
  }
}

TEST(Topology, HasLink) {
  const Topology t("t", 3, {Link{0, 1}});
  EXPECT_TRUE(t.has_link(0, 1));
  EXPECT_TRUE(t.has_link(1, 0));
  EXPECT_FALSE(t.has_link(0, 2));
  EXPECT_FALSE(t.has_link(0, 99));
}

TEST(Topology, VoteAccounting) {
  const Topology t("t", 3, {Link{0, 1}}, std::vector<Vote>{3, 0, 2});
  EXPECT_EQ(t.votes(0), 3u);
  EXPECT_EQ(t.votes(1), 0u);
  EXPECT_EQ(t.total_votes(), 5u);
}

TEST(Topology, DefaultVotesAreUniform) {
  const Topology t("t", 5, {Link{0, 1}});
  EXPECT_EQ(t.total_votes(), 5u);
  for (SiteId s = 0; s < 5; ++s) EXPECT_EQ(t.votes(s), 1u);
}

TEST(Builders, RingStructure) {
  const Topology ring = make_ring(7);
  EXPECT_EQ(ring.site_count(), 7u);
  EXPECT_EQ(ring.link_count(), 7u);
  for (SiteId s = 0; s < 7; ++s) {
    EXPECT_EQ(ring.degree(s), 2u);
    EXPECT_TRUE(ring.has_link(s, (s + 1) % 7));
  }
  EXPECT_THROW(make_ring(2), std::invalid_argument);
}

TEST(Builders, SpreadOrderIsPermutation) {
  for (const std::uint32_t n : {1u, 2u, 7u, 16u, 101u}) {
    const auto order = spread_order(n);
    ASSERT_EQ(order.size(), n);
    std::set<std::uint32_t> seen(order.begin(), order.end());
    EXPECT_EQ(seen.size(), n);
    EXPECT_EQ(*seen.begin(), 0u);
    EXPECT_EQ(*seen.rbegin(), n - 1);
  }
}

TEST(Builders, SpreadOrderPrefixesAreSpread) {
  // The first four offsets for n=101 should land in distinct quarters.
  const auto order = spread_order(101);
  std::set<std::uint32_t> quarters;
  for (std::size_t i = 0; i < 4; ++i) quarters.insert(order[i] / 26);
  EXPECT_GE(quarters.size(), 3u);
}

TEST(Builders, ChordOrderCoversAllNonRingPairs) {
  const auto chords = chord_order(101);
  // C(101,2) - 101 ring links = 5050 - 101 = 4949 (the paper's count).
  EXPECT_EQ(chords.size(), 4949u);

  std::set<std::pair<SiteId, SiteId>> seen;
  for (const Link& c : chords) {
    EXPECT_LT(c.a, c.b);
    EXPECT_TRUE(seen.insert({c.a, c.b}).second) << "duplicate chord";
  }
}

TEST(Builders, ChordOrderExcludesRingEdges) {
  for (const std::uint32_t n : {8u, 13u, 101u}) {
    for (const Link& c : chord_order(n)) {
      const bool is_ring = (c.b - c.a == 1) || (c.a == 0 && c.b == n - 1);
      EXPECT_FALSE(is_ring) << "chord (" << c.a << "," << c.b << ") is a ring edge";
    }
  }
}

TEST(Builders, ChordOrderSmallAndDegenerate) {
  EXPECT_TRUE(chord_order(3).empty());
  EXPECT_EQ(chord_order(4).size(), 2u);  // the two diagonals of a 4-cycle
  EXPECT_EQ(chord_order(5).size(), 5u);  // C(5,2)-5
}

TEST(Builders, PaperTopologyFamilyLinkCounts) {
  for (const std::uint32_t k : {0u, 1u, 2u, 4u, 16u, 256u, 4949u}) {
    const Topology t = make_ring_with_chords(101, k);
    EXPECT_EQ(t.site_count(), 101u);
    EXPECT_EQ(t.link_count(), 101u + k);
    EXPECT_EQ(t.total_votes(), 101u);
  }
  // Topology 4949 is the complete graph.
  EXPECT_EQ(make_ring_with_chords(101, 4949).link_count(), 5050u);
  EXPECT_THROW(make_ring_with_chords(101, 4950), std::invalid_argument);
}

TEST(Builders, ChordPlacementIsDeterministic) {
  const Topology a = make_ring_with_chords(101, 16);
  const Topology b = make_ring_with_chords(101, 16);
  ASSERT_EQ(a.link_count(), b.link_count());
  for (LinkId l = 0; l < a.link_count(); ++l) {
    EXPECT_EQ(a.link(l), b.link(l));
  }
}

TEST(Builders, FirstChordIsLongest) {
  const Topology t = make_ring_with_chords(101, 1);
  const Link chord = t.link(101);
  const std::uint32_t skip =
      std::min<std::uint32_t>(chord.b - chord.a, 101 - (chord.b - chord.a));
  EXPECT_EQ(skip, 50u);  // floor(n/2): a diameter-spanning chord
}

TEST(Builders, FullyConnected) {
  const Topology t = make_fully_connected(6);
  EXPECT_EQ(t.link_count(), 15u);
  for (SiteId a = 0; a < 6; ++a) {
    for (SiteId b = a + 1; b < 6; ++b) EXPECT_TRUE(t.has_link(a, b));
  }
  EXPECT_THROW(make_fully_connected(1), std::invalid_argument);
}

TEST(Builders, RingWithAllChordsEqualsComplete) {
  const Topology via_chords = make_ring_with_chords(9, 9 * 8 / 2 - 9);
  const Topology complete = make_fully_connected(9);
  EXPECT_EQ(via_chords.link_count(), complete.link_count());
  for (SiteId a = 0; a < 9; ++a) {
    for (SiteId b = a + 1; b < 9; ++b) EXPECT_TRUE(via_chords.has_link(a, b));
  }
}

TEST(Builders, StarVotes) {
  const Topology t = make_star(5, 0, 2);
  EXPECT_EQ(t.link_count(), 4u);
  EXPECT_EQ(t.votes(0), 0u);
  EXPECT_EQ(t.votes(3), 2u);
  EXPECT_EQ(t.total_votes(), 8u);
  EXPECT_EQ(t.degree(0), 4u);
  EXPECT_EQ(t.degree(1), 1u);
}

TEST(Builders, Grid) {
  const Topology t = make_grid(3, 2);
  EXPECT_EQ(t.site_count(), 6u);
  EXPECT_EQ(t.link_count(), 7u);  // 2 rows * 2 horiz + 3 vert = 4 + 3
  EXPECT_TRUE(t.has_link(0, 1));
  EXPECT_TRUE(t.has_link(0, 3));
  EXPECT_FALSE(t.has_link(2, 3));  // row wrap must not exist
}

TEST(Builders, BinaryTree) {
  const Topology t = make_binary_tree(7);
  EXPECT_EQ(t.link_count(), 6u);
  EXPECT_TRUE(t.has_link(0, 1));
  EXPECT_TRUE(t.has_link(0, 2));
  EXPECT_TRUE(t.has_link(1, 3));
  EXPECT_TRUE(t.has_link(2, 6));
  EXPECT_EQ(t.degree(0), 2u);
  EXPECT_EQ(t.degree(3), 1u);
}

TEST(Builders, ErdosRenyiDeterministicInSeed) {
  const Topology a = make_erdos_renyi(20, 0.3, 7);
  const Topology b = make_erdos_renyi(20, 0.3, 7);
  const Topology c = make_erdos_renyi(20, 0.3, 8);
  EXPECT_EQ(a.link_count(), b.link_count());
  EXPECT_NE(a.link_count(), c.link_count());  // overwhelmingly likely
}

TEST(Builders, ErdosRenyiExtremes) {
  EXPECT_EQ(make_erdos_renyi(10, 0.0, 1).link_count(), 0u);
  EXPECT_EQ(make_erdos_renyi(10, 1.0, 1).link_count(), 45u);
  EXPECT_THROW(make_erdos_renyi(10, 1.5, 1), std::invalid_argument);
}

TEST(Topology, FindLinkReturnsLinkCountWhenAbsent) {
  const Topology t = make_ring(5);
  EXPECT_EQ(t.find_link(0, 1), t.find_link(1, 0));
  EXPECT_LT(t.find_link(0, 1), t.link_count());
  EXPECT_EQ(t.find_link(0, 2), t.link_count());
  EXPECT_EQ(t.find_link(0, 0), t.link_count());
}

TEST(Topology, DomainPathsAreOptInAndValidated) {
  Topology t = make_ring(4);
  EXPECT_FALSE(t.has_domains());
  EXPECT_EQ(t.domain(0), "");

  t.set_domain(0, "rg0/dc1/rk2");
  EXPECT_TRUE(t.has_domains());
  EXPECT_EQ(t.domain(0), "rg0/dc1/rk2");

  // Last wins by design; the auditor flags the overlap, not the setter.
  t.set_domain(0, "rg1/dc0");
  EXPECT_EQ(t.domain(0), "rg1/dc0");

  // Empty path clears the annotation.
  t.set_domain(0, "");
  EXPECT_EQ(t.domain(0), "");

  EXPECT_THROW(t.set_domain(0, "/rg0"), std::invalid_argument);
  EXPECT_THROW(t.set_domain(0, "rg0//dc1"), std::invalid_argument);
  EXPECT_THROW(t.set_domain(0, "rg0/"), std::invalid_argument);
  EXPECT_THROW(t.set_domain(0, "rg 0"), std::invalid_argument);
  EXPECT_THROW(t.set_domain(99, "rg0"), std::invalid_argument);
}

TEST(Topology, DomainContainsUsesComponentBoundaries) {
  EXPECT_TRUE(Topology::domain_contains("rg0", "rg0"));
  EXPECT_TRUE(Topology::domain_contains("rg0", "rg0/dc1"));
  EXPECT_TRUE(Topology::domain_contains("rg0/dc1", "rg0/dc1/rk0"));
  EXPECT_FALSE(Topology::domain_contains("rg0", "rg01"));
  EXPECT_FALSE(Topology::domain_contains("rg0/dc1", "rg0"));
  // Empty prefix contains every annotated site; an unannotated site is
  // contained by nothing.
  EXPECT_TRUE(Topology::domain_contains("", "rg0"));
  EXPECT_FALSE(Topology::domain_contains("", ""));
  EXPECT_FALSE(Topology::domain_contains("rg0", ""));
}

TEST(Topology, SitesInDomainAndPrefixes) {
  Topology t = make_ring(6);
  t.set_domain(0, "rg0/dc0");
  t.set_domain(1, "rg0/dc1");
  t.set_domain(3, "rg1/dc0");
  t.set_domain(5, "rg0/dc0");

  const std::vector<SiteId> rg0 = t.sites_in_domain("rg0");
  EXPECT_EQ(rg0, (std::vector<SiteId>{0, 1, 5}));
  EXPECT_EQ(t.sites_in_domain("rg0/dc0"), (std::vector<SiteId>{0, 5}));
  EXPECT_EQ(t.sites_in_domain("rg9"), std::vector<SiteId>{});

  EXPECT_EQ(t.domain_prefix(1, 1), "rg0");
  EXPECT_EQ(t.domain_prefix(1, 2), "rg0/dc1");
  EXPECT_EQ(t.domain_prefix(1, 5), "rg0/dc1");  // deeper than the path
  EXPECT_EQ(t.domain_prefix(2, 1), "");         // unannotated

  const std::vector<std::string> regions = t.regions();
  EXPECT_EQ(regions, (std::vector<std::string>{"rg0", "rg1"}));
}

TEST(Topology, LinkLatencyClassesAreOptInAndValidated) {
  Topology t = make_ring(4);
  EXPECT_FALSE(t.has_link_latencies());
  EXPECT_EQ(t.link_latency(0).base, 0.0);
  EXPECT_EQ(t.link_latency(0).jitter, 0.0);

  t.set_link_latency(1, LinkLatency{0.03, 0.01});
  EXPECT_TRUE(t.has_link_latencies());
  EXPECT_DOUBLE_EQ(t.link_latency(1).base, 0.03);
  EXPECT_DOUBLE_EQ(t.link_latency(1).jitter, 0.01);
  EXPECT_EQ(t.link_latency(0).base, 0.0);  // untouched links stay default

  EXPECT_THROW(t.set_link_latency(0, LinkLatency{-1.0, 0.0}),
               std::invalid_argument);
  EXPECT_THROW(t.set_link_latency(0, LinkLatency{0.0, -1.0}),
               std::invalid_argument);
  EXPECT_THROW(t.set_link_latency(99, LinkLatency{0.0, 0.0}),
               std::invalid_argument);
}

TEST(Builders, GeoLayoutStructure) {
  const Topology t = make_geo(GeoSpec{});  // 3 regions x 2 DCs x 1 rack x 4
  EXPECT_EQ(t.site_count(), 24u);
  EXPECT_EQ(t.name(), "geo-3x2x1x4");
  // Per region: 2 racks-as-DCs of C(4,2)=6 intra links + 1 inter-DC link;
  // across regions: C(3,2)=3 pairs x 2 DC indices = 6 trunks.
  EXPECT_EQ(t.link_count(), 3u * (2u * 6u + 1u) + 6u);

  // Every site is annotated with a full three-level path.
  EXPECT_TRUE(t.has_domains());
  for (SiteId s = 0; s < t.site_count(); ++s) {
    EXPECT_NE(t.domain(s), "") << "site " << s;
  }
  EXPECT_EQ(t.domain(0), "rg0/dc0/rk0");
  EXPECT_EQ(t.domain(23), "rg2/dc1/rk0");
  EXPECT_EQ(t.regions(), (std::vector<std::string>{"rg0", "rg1", "rg2"}));
  EXPECT_EQ(t.sites_in_domain("rg0").size(), 8u);
  EXPECT_EQ(t.sites_in_domain("rg1/dc1").size(), 4u);

  // Inter-region trunks ride the DC leaders, one per DC index.
  EXPECT_TRUE(t.has_link(0, 8));
  EXPECT_TRUE(t.has_link(0, 16));
  EXPECT_TRUE(t.has_link(8, 16));
  EXPECT_TRUE(t.has_link(4, 12));
  EXPECT_FALSE(t.has_link(1, 9));  // non-leaders have no trunk

  // Every link carries a latency class, and trunks are the slow tier.
  EXPECT_TRUE(t.has_link_latencies());
  const GeoSpec spec;
  const LinkId trunk = t.find_link(0, 8);
  ASSERT_LT(trunk, t.link_count());
  EXPECT_DOUBLE_EQ(t.link_latency(trunk).base, spec.inter_region.base);
  const LinkId rack = t.find_link(0, 1);
  ASSERT_LT(rack, t.link_count());
  EXPECT_DOUBLE_EQ(t.link_latency(rack).base, spec.intra_rack.base);
}

TEST(Builders, GeoRejectsEmptyTiers) {
  GeoSpec spec;
  spec.regions = 0;
  EXPECT_THROW(make_geo(spec), std::invalid_argument);
  spec.regions = 2;
  spec.sites_per_rack = 0;
  EXPECT_THROW(make_geo(spec), std::invalid_argument);
}

} // namespace
} // namespace quora::net
