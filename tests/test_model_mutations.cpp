// The seeded-mutation harness, in-process: re-introduce two known-bad
// behaviours behind Cluster::Params::TestingMutations and assert that
// quora_model's explorer (a) finds each of them in the shipped fixture
// scopes, (b) minimizes the trace to one that still replays to the same
// violation, and (c) emits a `.chaos` counterexample the timed simulator
// validates (same check_safety code under quora_chaos's exact run
// parameters — see model::emit_chaos). The clean halves assert the
// unmutated protocol survives the very same scopes.
//
// The ctest targets `model-mutation-*` run the real quora_model binary
// over the same fixtures; this suite covers the library API.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "model/chaos_emit.hpp"
#include "model/explorer.hpp"
#include "model/scope.hpp"

namespace {

using quora::model::EmittedChaos;
using quora::model::Explorer;
using quora::model::Scope;
using quora::model::Violation;

Scope load_fixture(const char* name) {
  return quora::model::load_model_file(std::string(QUORA_EXAMPLES_DIR) +
                                       "/model/" + name);
}

bool has_code(const Violation& v, const std::string& code) {
  const std::vector<std::string> codes = v.codes();
  return std::find(codes.begin(), codes.end(), code) != codes.end();
}

void expect_detected(const char* fixture, const std::string& code) {
  const Scope scope = load_fixture(fixture);
  Explorer explorer(scope);
  const auto violation = explorer.run();
  ASSERT_TRUE(violation.has_value()) << fixture << ": mutation not detected";
  EXPECT_TRUE(has_code(*violation, code)) << fixture;

  // Minimization must end on a trace that still replays to (at least)
  // the same violation codes, never longer than what the DFS found.
  const std::vector<quora::model::Choice> minimized =
      explorer.minimize(*violation);
  ASSERT_LE(minimized.size(), violation->trace.size());
  const auto replayed = explorer.replay(minimized);
  ASSERT_TRUE(replayed.has_value()) << fixture << ": minimized trace dead";
  EXPECT_TRUE(has_code(*replayed, code)) << fixture;

  // Counterexample-to-chaos: the emitted plan must validate in-process —
  // the timed simulator, run exactly as quora_chaos runs it, reproduces
  // the same safety code under the embedded (seed, spacing).
  const EmittedChaos chaos = quora::model::emit_chaos(scope, *replayed);
  EXPECT_TRUE(chaos.validated) << fixture << ": .chaos does not reproduce";
  EXPECT_NE(chaos.text.find("mutate"), std::string::npos);
  EXPECT_NE(chaos.text.find(code), std::string::npos);
}

void expect_clean(const char* fixture, std::uint64_t states_budget) {
  Scope scope = load_fixture(fixture);
  scope.chaos.mutations.clear();
  scope.max_states = states_budget;
  Explorer explorer(scope);
  EXPECT_FALSE(explorer.run().has_value())
      << fixture << ": unmutated protocol violated safety";
}

TEST(SeededMutations, AcceptStaleQrIsDetectedAndReplays) {
  // Dropping the §2.2 stale-version rejection lets a reconnected minority
  // grant reads under a superseded assignment: [stale-assignment].
  expect_detected("mutation_stale_qr.model", "stale-assignment");
}

TEST(SeededMutations, SkipCrashCleanupIsDetectedAndReplays) {
  // Keeping a crashed coordinator's pending coordinations alive lets two
  // writes both commit version 1: [duplicate-version].
  expect_detected("mutation_crash_cleanup.model", "duplicate-version");
}

TEST(SeededMutations, StaleQrScopeIsSafeWithoutTheMutation) {
  // The stale-qr scope is small enough to exhaust outright.
  expect_clean("mutation_stale_qr.model", 2'000'000);
}

TEST(SeededMutations, CrashCleanupScopeIsSafeWithoutTheMutation) {
  // The crash scope does not exhaust in reasonable time; the differential
  // claim is bounded — no violation within the budget the mutated run
  // needed to find one (and then some).
  expect_clean("mutation_crash_cleanup.model", 150'000);
}

} // namespace
