// Tests for the availability function A(alpha, q_r) — Figure 1 steps 2-3 —
// built from hand-computable densities.

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/availability.hpp"
#include "core/component_dist.hpp"

namespace quora::core {
namespace {

// T = 4; masses chosen for easy mental arithmetic.
VotePdf simple_pdf() { return VotePdf{0.1, 0.2, 0.3, 0.25, 0.15}; }

TEST(AvailabilityCurve, TailsAreSuffixSums) {
  const AvailabilityCurve curve(simple_pdf());
  EXPECT_EQ(curve.total_votes(), 4u);
  EXPECT_EQ(curve.max_read_quorum(), 2u);
  EXPECT_NEAR(curve.read_tail(0), 1.0, 1e-12);
  EXPECT_NEAR(curve.read_tail(1), 0.9, 1e-12);
  EXPECT_NEAR(curve.read_tail(2), 0.7, 1e-12);
  EXPECT_NEAR(curve.read_tail(3), 0.4, 1e-12);
  EXPECT_NEAR(curve.read_tail(4), 0.15, 1e-12);
  EXPECT_NEAR(curve.read_tail(5), 0.0, 1e-12);
}

TEST(AvailabilityCurve, AvailabilityFormulaByHand) {
  const AvailabilityCurve curve(simple_pdf());
  // q_r = 1 -> q_w = 4: A = a*R(1) + (1-a)*W(4) = a*0.9 + (1-a)*0.15.
  EXPECT_NEAR(curve.availability(0.0, 1), 0.15, 1e-12);
  EXPECT_NEAR(curve.availability(1.0, 1), 0.90, 1e-12);
  EXPECT_NEAR(curve.availability(0.5, 1), 0.525, 1e-12);
  // q_r = 2 -> q_w = 3: A = a*0.7 + (1-a)*0.4.
  EXPECT_NEAR(curve.availability(0.25, 2), 0.25 * 0.7 + 0.75 * 0.4, 1e-12);
}

TEST(AvailabilityCurve, ReadAndWriteViews) {
  const AvailabilityCurve curve(simple_pdf());
  EXPECT_NEAR(curve.read_availability(2), 0.7, 1e-12);
  EXPECT_NEAR(curve.write_availability(2), 0.4, 1e-12);  // q_w = 3
  EXPECT_NEAR(curve.availability(1.0, 2), curve.read_availability(2), 1e-12);
  EXPECT_NEAR(curve.availability(0.0, 2), curve.write_availability(2), 1e-12);
}

TEST(AvailabilityCurve, DistinctReadWriteDensities) {
  const VotePdf r{0.0, 0.0, 0.0, 0.0, 1.0};  // reads always see all 4 votes
  const VotePdf w{0.5, 0.5, 0.0, 0.0, 0.0};  // writes see 0 or 1
  const AvailabilityCurve curve(r, w);
  EXPECT_NEAR(curve.availability(0.5, 2), 0.5 * 1.0 + 0.5 * 0.0, 1e-12);
  EXPECT_NEAR(curve.availability(0.5, 1), 0.5 * 1.0 + 0.5 * 0.0, 1e-12);
}

TEST(AvailabilityCurve, ValueHandlesNonCanonicalAssignments) {
  const AvailabilityCurve curve(simple_pdf());
  // Strict majority on T=4: q_r = q_w = 3.
  EXPECT_NEAR(curve.value(0.5, 3, 3), 0.5 * 0.4 + 0.5 * 0.4, 1e-12);
  // Canonical assignments agree with availability().
  EXPECT_NEAR(curve.value(0.25, 2, 3), curve.availability(0.25, 2), 1e-12);
  EXPECT_THROW(curve.value(0.5, 0, 3), std::out_of_range);
  EXPECT_THROW(curve.value(0.5, 3, 5), std::out_of_range);
}

TEST(AvailabilityCurve, WeightedObjective) {
  const AvailabilityCurve curve(simple_pdf());
  // omega = 0 strips the write term entirely.
  EXPECT_NEAR(curve.weighted(0.0, 0.5, 1), 0.5 * 0.9, 1e-12);
  // omega = 2 doubles it.
  EXPECT_NEAR(curve.weighted(2.0, 0.5, 1), 0.5 * 0.9 + 2.0 * 0.5 * 0.15, 1e-12);
  // omega = 1 is plain availability.
  EXPECT_NEAR(curve.weighted(1.0, 0.3, 2), curve.availability(0.3, 2), 1e-12);
}

TEST(AvailabilityCurve, ConditionalOnUpIdentity) {
  // Footnote 4: p * A' = A with uniform access; here P(up) = 1 - pdf[0].
  const AvailabilityCurve curve(simple_pdf());
  const double p_up = 0.9;
  for (net::Vote q = 1; q <= curve.max_read_quorum(); ++q) {
    for (const double alpha : {0.0, 0.3, 1.0}) {
      EXPECT_NEAR(p_up * curve.conditional_on_up(alpha, q),
                  curve.availability(alpha, q), 1e-12);
    }
  }
}

TEST(AvailabilityCurve, MonotoneStructure) {
  const AvailabilityCurve curve(ring_site_pdf(15, 0.9, 0.9));
  for (net::Vote q = 1; q < curve.max_read_quorum(); ++q) {
    // Reads only get harder as q_r grows...
    EXPECT_GE(curve.read_availability(q), curve.read_availability(q + 1));
    // ...and writes easier (q_w shrinks).
    EXPECT_LE(curve.write_availability(q), curve.write_availability(q + 1));
    // So A(1, .) is nonincreasing and A(0, .) nondecreasing.
    EXPECT_GE(curve.availability(1.0, q), curve.availability(1.0, q + 1));
    EXPECT_LE(curve.availability(0.0, q), curve.availability(0.0, q + 1));
  }
}

TEST(AvailabilityCurve, InputValidation) {
  EXPECT_THROW(AvailabilityCurve(VotePdf{}), std::invalid_argument);
  EXPECT_THROW(AvailabilityCurve(VotePdf{0.5, 0.5}), std::invalid_argument);  // T=1
  EXPECT_THROW(AvailabilityCurve(VotePdf{1.0, 0.0, 0.0}, VotePdf{1.0, 0.0}),
               std::invalid_argument);
  const AvailabilityCurve curve(simple_pdf());
  EXPECT_THROW(curve.availability(0.5, 0), std::out_of_range);
  EXPECT_THROW(curve.availability(0.5, 3), std::out_of_range);  // > floor(T/2)
  EXPECT_THROW(curve.availability(1.5, 1), std::invalid_argument);
}

TEST(AvailabilityCurve, PaperQrOneLaw) {
  // With the analytic ring density at p = r = 0.96: A(alpha, 1) =
  // alpha*0.96 + (1-alpha)*W(T) and W(T) is negligible for a ring.
  const AvailabilityCurve curve(ring_site_pdf(101, 0.96, 0.96));
  for (const double alpha : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    EXPECT_NEAR(curve.availability(alpha, 1), 0.96 * alpha, 2e-3);
  }
}

TEST(AvailabilityCurve, CurvesConvergeAtMajorityEndpoint) {
  // §5.3: at q_r = floor(T/2), q_r and q_w are nearly equal, so the
  // alpha-curves collapse (R(50) ~ W(52)).
  const AvailabilityCurve curve(ring_site_pdf(101, 0.96, 0.96));
  const net::Vote q = curve.max_read_quorum();
  const double a0 = curve.availability(0.0, q);
  const double a1 = curve.availability(1.0, q);
  EXPECT_NEAR(a0, a1, 0.02);
}

} // namespace
} // namespace quora::core
