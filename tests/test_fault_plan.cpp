// Tests for the fault-injection engine's offline half: the .chaos DSL
// parser, the fluent FaultPlan builder, the FaultInjector's validation
// and determinism contract, the EventLog, and the chaos static audit.

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "fault/chaos_audit.hpp"
#include "fault/event_log.hpp"
#include "fault/fault_plan.hpp"
#include "fault/injector.hpp"
#include "io/config_audit.hpp"
#include "net/builders.hpp"

namespace quora::fault {
namespace {

constexpr const char* kFullPlan = R"(# every directive once
name kitchen-sink
seed 42
horizon 300
quorum 8 18

sites 25
ring
chords 4

at 10 site 3 down
at 20 site 3 up
at 30 link 7 down
at 40 link 7 up
at 50 crash 5 for 15
at 60 partition 0-12 | 13-24
at 90 reassign 11 15 from 4
at 120 heal-links
at 150 heal
at 160 crash-on-commit any for 20
at 170 crash-on-commit 9
flap link 2 from 180 until 200 period 4
window 10 100 drop 0.25
window 10 100 delay 0.5 0.01
window 10 100 duplicate 0.1 link 3
)";

TEST(ChaosParser, ParsesEveryDirective) {
  std::istringstream in(kFullPlan);
  const ChaosSpec spec = load_chaos(in);
  EXPECT_EQ(spec.name, "kitchen-sink");
  EXPECT_TRUE(spec.has_seed);
  EXPECT_EQ(spec.seed, 42u);
  EXPECT_DOUBLE_EQ(spec.horizon, 300.0);
  ASSERT_TRUE(spec.has_quorum);
  EXPECT_EQ(spec.quorum.q_r, 8u);
  EXPECT_EQ(spec.quorum.q_w, 18u);
  ASSERT_TRUE(spec.system.has_value());
  EXPECT_EQ(spec.system->topology.site_count(), 25u);
  EXPECT_EQ(spec.system->topology.link_count(), 29u);  // ring + 4 chords
  EXPECT_EQ(spec.plan.rules().size(), 3u);

  // crash expands to down+up, flap to a toggle train ending in link-up.
  std::size_t partitions = 0;
  std::size_t reassigns = 0;
  std::size_t crash_arms = 0;
  for (const Action& a : spec.plan.actions()) {
    partitions += a.kind == Action::Kind::kPartition;
    reassigns += a.kind == Action::Kind::kReassign;
    crash_arms += a.kind == Action::Kind::kArmCrashOnCommit;
  }
  EXPECT_EQ(partitions, 1u);
  EXPECT_EQ(reassigns, 1u);
  EXPECT_EQ(crash_arms, 2u);
}

TEST(ChaosParser, PartitionGroupsExpandRangesAndCommas) {
  std::istringstream in("sites 10\nring\nat 5 partition 0-2,7 | 3-6,8,9\n");
  const ChaosSpec spec = load_chaos(in);
  const Action* partition = nullptr;
  for (const Action& a : spec.plan.actions()) {
    if (a.kind == Action::Kind::kPartition) partition = &a;
  }
  ASSERT_NE(partition, nullptr);
  ASSERT_EQ(partition->groups.size(), 2u);
  EXPECT_EQ(partition->groups[0], (std::vector<net::SiteId>{0, 1, 2, 7}));
  EXPECT_EQ(partition->groups[1], (std::vector<net::SiteId>{3, 4, 5, 6, 8, 9}));
}

TEST(ChaosParser, FlapAlwaysHandsTheLinkBack) {
  std::istringstream in("sites 5\nring\nflap link 1 from 0 until 10 period 3\n");
  const ChaosSpec spec = load_chaos(in);
  const auto& actions = spec.plan.actions();
  ASSERT_FALSE(actions.empty());
  // Toggles at 0 (down), 3 (up), 6 (down), 9 (up), then the guaranteed
  // link-up at the window end.
  EXPECT_EQ(actions.size(), 5u);
  EXPECT_EQ(actions.back().kind, Action::Kind::kLinkUp);
  EXPECT_DOUBLE_EQ(actions.back().time, 10.0);
}

TEST(ChaosParser, RejectsMalformedLinesWithLineNumbers) {
  const char* bad[] = {
      "at ten site 0 down\n",                 // non-numeric time
      "at 5 site 0 sideways\n",               // bad state
      "at 5 partition 0-4\n",                 // one group only
      "at 5 reassign 3 from 0\n",             // missing q_w
      "window 5 10 teleport 0.5\n",           // unknown rule kind
      "flap link 0 from 10 until 5 period 1\n",  // inverted window
      "at 5 site 0 down extra\n",             // trailing junk
  };
  for (const char* text : bad) {
    std::istringstream in(std::string("sites 5\nring\n") + text);
    EXPECT_THROW(load_chaos(in), io::ParseError) << text;
  }
}

TEST(ChaosParser, SystemLinesPassThroughToLoadSystem) {
  std::istringstream in(
      "sites 4\nlink 0 1\nlink 1 2\nlink 2 3\nvote 2 3\nat 1 heal\n");
  const ChaosSpec spec = load_chaos(in);
  EXPECT_EQ(spec.system->topology.votes(2), 3u);
  EXPECT_EQ(spec.system->topology.link_count(), 3u);
}

TEST(FaultPlanBuilder, MatchesParsedEquivalent) {
  FaultPlan built;
  built.partition(60.0, {{0, 1, 2}, {3, 4}})
      .reassign(90.0, 0, quorum::QuorumSpec{3, 3})
      .heal(150.0)
      .drop(10.0, 100.0, 0.25);
  std::istringstream in(
      "sites 5\nring\nat 60 partition 0-2 | 3-4\n"
      "at 90 reassign 3 3 from 0\nat 150 heal\nwindow 10 100 drop 0.25\n");
  const ChaosSpec parsed = load_chaos(in);
  ASSERT_EQ(built.actions().size(), parsed.plan.actions().size());
  for (std::size_t i = 0; i < built.actions().size(); ++i) {
    EXPECT_EQ(built.actions()[i].kind, parsed.plan.actions()[i].kind) << i;
    EXPECT_DOUBLE_EQ(built.actions()[i].time, parsed.plan.actions()[i].time);
  }
  ASSERT_EQ(parsed.plan.rules().size(), 1u);
  EXPECT_DOUBLE_EQ(parsed.plan.rules()[0].probability, 0.25);
}

TEST(FaultInjector, ValidatesThePlan) {
  {
    FaultPlan p;
    p.site_down(-1.0, 0);
    EXPECT_THROW(FaultInjector(p, 1), std::invalid_argument);
  }
  {
    FaultPlan p;
    p.drop(0.0, 10.0, 1.5);
    EXPECT_THROW(FaultInjector(p, 1), std::invalid_argument);
  }
  {
    FaultPlan p;
    p.drop(10.0, 5.0, 0.5);
    EXPECT_THROW(FaultInjector(p, 1), std::invalid_argument);
  }
  {
    FaultPlan p;
    p.partition(5.0, {{0, 1, 2}});
    EXPECT_THROW(FaultInjector(p, 1), std::invalid_argument);
  }
  {
    // duration == 0 is the defined crash-with-immediate-restart; only
    // negative or non-finite down-times are rejected.
    FaultPlan p;
    p.arm_crash_on_commit(5.0, kAnySite, 0.0);
    EXPECT_NO_THROW(FaultInjector(p, 1));
  }
  {
    FaultPlan p;
    p.arm_crash_on_commit(5.0, kAnySite, -1.0);
    EXPECT_THROW(FaultInjector(p, 1), std::invalid_argument);
  }
}

TEST(FaultInjector, TimelineIsStablySortedByTime) {
  FaultPlan p;
  p.heal(50.0).site_down(10.0, 1).heal_links(50.0).site_up(20.0, 1);
  const FaultInjector injector(p, 1);
  const auto& timeline = injector.timeline();
  ASSERT_EQ(timeline.size(), 4u);
  EXPECT_EQ(timeline[0].kind, Action::Kind::kSiteDown);
  EXPECT_EQ(timeline[1].kind, Action::Kind::kSiteUp);
  // Equal times keep plan order: heal before heal-links.
  EXPECT_EQ(timeline[2].kind, Action::Kind::kHeal);
  EXPECT_EQ(timeline[3].kind, Action::Kind::kHealLinks);
}

TEST(FaultInjector, SameSeedSameQuerySequenceIsDeterministic) {
  FaultPlan p;
  p.drop(0.0, 100.0, 0.3).delay(0.0, 100.0, 0.4, 0.02).duplicate(0.0, 100.0, 0.2);
  FaultInjector a(p, 99);
  FaultInjector b(p, 99);
  for (int i = 0; i < 500; ++i) {
    const net::LinkId link = static_cast<net::LinkId>(i % 7);
    const double t = 0.2 * i;
    const MessageFault fa = a.on_send(link, t, 0.005);
    const MessageFault fb = b.on_send(link, t, 0.005);
    EXPECT_EQ(fa.drop, fb.drop);
    EXPECT_EQ(fa.duplicate, fb.duplicate);
    EXPECT_DOUBLE_EQ(fa.extra_delay, fb.extra_delay);
    EXPECT_DOUBLE_EQ(fa.dup_extra, fb.dup_extra);
  }
}

TEST(FaultInjector, RulesApplyOnlyInsideTheirWindowAndLink) {
  FaultPlan p;
  p.drop(10.0, 20.0, 1.0, 3);  // certain drop, link 3 only
  FaultInjector injector(p, 7);
  EXPECT_FALSE(injector.on_send(3, 5.0, 0.005).drop);    // before the window
  EXPECT_TRUE(injector.on_send(3, 15.0, 0.005).drop);    // inside
  EXPECT_FALSE(injector.on_send(2, 15.0, 0.005).drop);   // other link
  EXPECT_FALSE(injector.on_send(3, 20.0, 0.005).drop);   // half-open end
}

TEST(FaultInjector, DelayAndDuplicateProducePositiveExtras) {
  FaultPlan p;
  p.delay(0.0, 10.0, 1.0, 0.05).duplicate(0.0, 10.0, 1.0);
  FaultInjector injector(p, 11);
  const MessageFault f = injector.on_send(0, 1.0, 0.005);
  EXPECT_GT(f.extra_delay, 0.0);
  ASSERT_TRUE(f.duplicate);
  EXPECT_GT(f.dup_extra, 0.0);
}

TEST(FaultInjector, CrashOnCommitTriggersAreOneShotAndFiltered) {
  FaultPlan p;
  FaultInjector injector(p, 1);
  injector.arm_crash_on_commit(4, 12.0);
  injector.arm_crash_on_commit(kAnySite, 7.0);
  // Site 3 matches only the wildcard trigger.
  const auto any = injector.take_crash_on_commit(3);
  ASSERT_TRUE(any.has_value());
  EXPECT_DOUBLE_EQ(*any, 7.0);
  // Site 4's dedicated trigger is still armed; a second take finds nothing.
  const auto dedicated = injector.take_crash_on_commit(4);
  ASSERT_TRUE(dedicated.has_value());
  EXPECT_DOUBLE_EQ(*dedicated, 12.0);
  EXPECT_FALSE(injector.take_crash_on_commit(4).has_value());
  EXPECT_EQ(injector.armed_crash_count(), 0u);
}

TEST(EventLog, DeterministicBytesAndHash) {
  EventLog a;
  EventLog b;
  a.record(1.0 / 3.0, "decide id=1");
  a.record(2.5, "fault heal");
  b.record(1.0 / 3.0, "decide id=1");
  b.record(2.5, "fault heal");
  EXPECT_EQ(a.lines(), b.lines());
  EXPECT_EQ(a.hash(), b.hash());
  EXPECT_EQ(a.lines()[0], "t=0.333333 decide id=1");
  EXPECT_TRUE(a.contains("fault heal"));
  EXPECT_FALSE(a.contains("partition"));
  b.record(3.0, "one more");
  EXPECT_NE(a.hash(), b.hash());
}

TEST(ChaosAudit, AcceptsTheShippedStylePlan) {
  std::istringstream in(kFullPlan);
  const io::AuditReport report = audit_chaos(in);
  EXPECT_TRUE(report.ok()) << "unexpected findings";
}

TEST(ChaosAudit, FlagsScheduleProblems) {
  {
    std::istringstream in("sites 5\nring\nquorum 3 3\nwindow 80 40 drop 0.5\n");
    const io::AuditReport report = audit_chaos(in);
    EXPECT_FALSE(report.ok());
    EXPECT_TRUE(report.has(io::AuditCode::kChaosBadSchedule));
  }
  {
    // Overlapping partition groups.
    std::istringstream in(
        "horizon 100\nsites 5\nring\nquorum 3 3\nat 10 partition 0-2 | 2-4\n");
    const io::AuditReport report = audit_chaos(in);
    EXPECT_TRUE(report.has(io::AuditCode::kChaosBadSchedule));
  }
  {
    // Missing horizon is an error: the soak harness needs a duration.
    std::istringstream in("sites 5\nring\nquorum 3 3\nat 10 heal\n");
    const io::AuditReport report = audit_chaos(in);
    EXPECT_TRUE(report.has(io::AuditCode::kChaosBadSchedule));
  }
  {
    // Actions beyond the horizon only warn.
    std::istringstream in("horizon 50\nsites 5\nring\nquorum 3 3\nat 60 heal\n");
    const io::AuditReport report = audit_chaos(in);
    EXPECT_TRUE(report.ok());
    EXPECT_TRUE(report.has(io::AuditCode::kChaosBadSchedule));
  }
}

TEST(ChaosAudit, FlagsUnknownTargets) {
  {
    std::istringstream in("horizon 100\nsites 5\nring\nquorum 3 3\nat 10 site 9 down\n");
    const io::AuditReport report = audit_chaos(in);
    EXPECT_FALSE(report.ok());
    EXPECT_TRUE(report.has(io::AuditCode::kChaosUnknownTarget));
  }
  {
    std::istringstream in(
        "horizon 100\nsites 5\nring\nquorum 3 3\nwindow 0 10 drop 0.5 link 99\n");
    const io::AuditReport report = audit_chaos(in);
    EXPECT_TRUE(report.has(io::AuditCode::kChaosUnknownTarget));
  }
}

TEST(ChaosAudit, ReusesQuorumCodesForAssignments) {
  {
    // Initial assignment lacks read-write intersection: 2+2 <= 5.
    std::istringstream in("horizon 100\nsites 5\nring\nquorum 2 2\n");
    const io::AuditReport report = audit_chaos(in);
    EXPECT_FALSE(report.ok());
    EXPECT_TRUE(report.has(io::AuditCode::kQuorumIntersection));
  }
  {
    // A reassign target is audited like the initial assignment.
    std::istringstream in(
        "horizon 100\nsites 5\nring\nquorum 3 3\nat 10 reassign 1 2 from 0\n");
    const io::AuditReport report = audit_chaos(in);
    EXPECT_FALSE(report.ok());
  }
}

TEST(ChaosAudit, ParseFailureIsAFinding) {
  std::istringstream in("sites 5\nring\nat nonsense\n");
  const io::AuditReport report = audit_chaos(in);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.has(io::AuditCode::kParseError));
}

TEST(ChaosParser, ParsesDomainOnewayCorrelateAndBetween) {
  std::istringstream in(
      "name geo\nseed 1\nhorizon 200\n"
      "sites 24\ngeo 3 2 1 4\n"
      "at 60 domain rg0 down\n"
      "at 120 domain rg0 up\n"
      "at 50 oneway 0 8 down\n"
      "at 90 oneway 0 8 up\n"
      "correlate rack 0.8 for 30\n"
      "correlate region 0.1 for 5\n"
      "window 40 160 drop 0.3 between rg0 rg1\n"
      "window 40 160 delay 0.5 0.08 between rg0 *\n");
  const ChaosSpec spec = load_chaos(in);

  std::size_t domain_down = 0, domain_up = 0, oneway_down = 0, oneway_up = 0;
  for (const Action& a : spec.plan.actions()) {
    switch (a.kind) {
      case Action::Kind::kDomainDown:
        ++domain_down;
        EXPECT_EQ(a.domain, "rg0");
        break;
      case Action::Kind::kDomainUp: ++domain_up; break;
      case Action::Kind::kOneWayDown:
        ++oneway_down;
        EXPECT_EQ(a.site, 0u);
        EXPECT_EQ(a.site_b, 8u);
        break;
      case Action::Kind::kOneWayUp: ++oneway_up; break;
      default: break;
    }
  }
  EXPECT_EQ(domain_down, 1u);
  EXPECT_EQ(domain_up, 1u);
  EXPECT_EQ(oneway_down, 1u);
  EXPECT_EQ(oneway_up, 1u);

  ASSERT_EQ(spec.plan.correlations().size(), 2u);
  EXPECT_EQ(spec.plan.correlations()[0].level, 3);  // rack
  EXPECT_DOUBLE_EQ(spec.plan.correlations()[0].probability, 0.8);
  EXPECT_DOUBLE_EQ(spec.plan.correlations()[0].down_for, 30.0);
  EXPECT_EQ(spec.plan.correlations()[1].level, 1);  // region

  ASSERT_EQ(spec.plan.rules().size(), 2u);
  EXPECT_EQ(spec.plan.rules()[0].domain_a, "rg0");
  EXPECT_EQ(spec.plan.rules()[0].domain_b, "rg1");
  EXPECT_EQ(spec.plan.rules()[1].domain_b, "*");
}

TEST(ChaosParser, RejectsMalformedDomainDirectives) {
  const char* bad[] = {
      "at 5 domain down\n",                    // missing path
      "at 5 domain rg0 sideways\n",            // bad state
      "at 5 oneway 0 down\n",                  // missing to-site
      "correlate building 0.5 for 10\n",       // unknown level
      "correlate rack 0.5\n",                  // missing 'for D'
      "window 5 10 drop 0.5 between * rg1\n",  // wildcard first
      "window 5 10 drop 0.5 between rg0\n",    // one domain only
  };
  for (const char* text : bad) {
    std::istringstream in(std::string("sites 24\ngeo 3 2 1 4\n") + text);
    EXPECT_THROW(load_chaos(in), io::ParseError) << text;
  }
}

TEST(FaultPlanBuilder, DomainFluentMethodsMatchParsed) {
  FaultPlan built;
  built.domain_down(60.0, "rg0")
      .domain_up(120.0, "rg0")
      .oneway_down(50.0, 0, 8)
      .oneway_up(90.0, 0, 8)
      .correlate(3, 0.8, 30.0)
      .drop_between(40.0, 160.0, 0.3, "rg0", "rg1");
  std::istringstream in(
      "sites 24\ngeo 3 2 1 4\n"
      "at 60 domain rg0 down\nat 120 domain rg0 up\n"
      "at 50 oneway 0 8 down\nat 90 oneway 0 8 up\n"
      "correlate rack 0.8 for 30\n"
      "window 40 160 drop 0.3 between rg0 rg1\n");
  const ChaosSpec parsed = load_chaos(in);
  ASSERT_EQ(built.actions().size(), parsed.plan.actions().size());
  for (std::size_t i = 0; i < built.actions().size(); ++i) {
    EXPECT_EQ(built.actions()[i].kind, parsed.plan.actions()[i].kind) << i;
  }
  ASSERT_EQ(parsed.plan.correlations().size(), 1u);
  ASSERT_EQ(parsed.plan.rules().size(), 1u);
  EXPECT_EQ(parsed.plan.rules()[0].domain_a, built.rules()[0].domain_a);
}

TEST(FaultInjector, ValidatesDomainActionsAndCorrelations) {
  {
    FaultPlan p;
    p.domain_down(5.0, "");  // empty path is meaningless
    EXPECT_THROW(FaultInjector(p, 1), std::invalid_argument);
  }
  {
    FaultPlan p;
    p.oneway_down(5.0, 3, 3);  // degenerate self-cut
    EXPECT_THROW(FaultInjector(p, 1), std::invalid_argument);
  }
  {
    FaultPlan p;
    p.correlate(0, 0.5, 10.0);  // level below region
    EXPECT_THROW(FaultInjector(p, 1), std::invalid_argument);
  }
  {
    FaultPlan p;
    p.correlate(2, 1.5, 10.0);  // probability outside [0, 1]
    EXPECT_THROW(FaultInjector(p, 1), std::invalid_argument);
  }
  {
    FaultPlan p;
    p.correlate(2, 0.5, 0.0);  // cascade victims need a positive down-time
    EXPECT_THROW(FaultInjector(p, 1), std::invalid_argument);
  }
  {
    FaultPlan p;
    p.drop_between(5.0, 10.0, 0.5, "*", "rg1");  // wildcard first domain
    EXPECT_THROW(FaultInjector(p, 1), std::invalid_argument);
  }
  {
    FaultPlan p;  // a legal geo plan passes
    p.domain_down(5.0, "rg0").correlate(1, 0.2, 10.0);
    p.drop_between(5.0, 10.0, 0.5, "rg0", "*");
    EXPECT_NO_THROW(FaultInjector(p, 1));
  }
  {
    FaultPlan p;  // from == until is the legal inert window, also between
    p.drop_between(5.0, 5.0, 1.0, "rg0", "rg1");
    EXPECT_NO_THROW(FaultInjector(p, 1));
  }
}

TEST(FaultInjector, InertWindowNeverMatchesNorDraws) {
  FaultPlan inert_then_live;
  inert_then_live.drop(5.0, 5.0, 1.0);  // would drop everything if live
  inert_then_live.drop(0.0, 100.0, 0.5);
  FaultPlan live_only;
  live_only.drop(0.0, 100.0, 0.5);

  FaultInjector a(inert_then_live, 7);
  FaultInjector b(live_only, 7);
  // The inert window matches nothing (not even departures at exactly
  // t=5.0) and consumes no randomness: both injectors replay the same
  // fate sequence draw for draw.
  for (int i = 0; i < 200; ++i) {
    const double t = 0.05 * i;  // crosses t=5.0 exactly at i=100
    const MessageFault fa = a.on_send(0, t, 0.01);
    const MessageFault fb = b.on_send(0, t, 0.01);
    EXPECT_EQ(fa.drop, fb.drop) << "t=" << t;
  }
}

TEST(FaultInjector, DomainScopedRulesMatchOnlyCrossDomainLinks) {
  const net::Topology topo = net::make_geo(net::GeoSpec{});
  FaultPlan p;
  p.drop_between(0.0, 100.0, 1.0, "rg0", "rg1");
  FaultInjector injector(p, 3);
  // Without a topology a domain-scoped rule matches nothing.
  const net::LinkId trunk01 = topo.find_link(0, 8);   // rg0 <-> rg1
  const net::LinkId trunk02 = topo.find_link(0, 16);  // rg0 <-> rg2
  const net::LinkId local = topo.find_link(0, 1);     // inside rg0
  ASSERT_LT(trunk01, topo.link_count());
  EXPECT_FALSE(injector.on_send(trunk01, 1.0, 0.005).drop);

  injector.set_topology(&topo);
  EXPECT_TRUE(injector.on_send(trunk01, 1.0, 0.005).drop);
  EXPECT_FALSE(injector.on_send(trunk02, 1.0, 0.005).drop);
  EXPECT_FALSE(injector.on_send(local, 1.0, 0.005).drop);
  EXPECT_FALSE(injector.on_send(trunk01, 100.0, 0.005).drop);  // window end

  // The "*" form matches every link leaving the domain, either boundary.
  FaultPlan q;
  q.drop_between(0.0, 100.0, 1.0, "rg1", "*");
  FaultInjector wild(q, 3);
  wild.set_topology(&topo);
  EXPECT_TRUE(wild.on_send(trunk01, 1.0, 0.005).drop);
  EXPECT_TRUE(wild.on_send(topo.find_link(8, 16), 1.0, 0.005).drop);
  EXPECT_FALSE(wild.on_send(trunk02, 1.0, 0.005).drop);
  EXPECT_FALSE(wild.on_send(topo.find_link(8, 9), 1.0, 0.005).drop);
}

TEST(FaultInjector, CorrelatedFailuresAreDeterministicAndScoped) {
  const net::Topology topo = net::make_geo(net::GeoSpec{});
  FaultPlan p;
  p.correlate(3, 1.0, 30.0);  // every rack-mate fails, always

  FaultInjector injector(p, 42);
  EXPECT_TRUE(injector.has_correlations());
  // Without a topology the cascade never fires.
  EXPECT_TRUE(injector.correlated_failures(0).empty());

  injector.set_topology(&topo);
  const auto fired = injector.correlated_failures(0);
  // Site 0's rack is rg0/dc0/rk0 = sites 0..3; the failed site itself is
  // never returned.
  ASSERT_EQ(fired.size(), 3u);
  EXPECT_EQ(fired[0].first, 1u);
  EXPECT_EQ(fired[1].first, 2u);
  EXPECT_EQ(fired[2].first, 3u);
  for (const auto& [site, down_for] : fired) {
    EXPECT_DOUBLE_EQ(down_for, 30.0) << "site " << site;
  }

  // Same seed, same query sequence => identical cascades.
  FaultInjector replay(p, 42);
  replay.set_topology(&topo);
  EXPECT_EQ(replay.correlated_failures(0), fired);

  // p = 0 consumes draws but fires nothing.
  FaultPlan quiet;
  quiet.correlate(3, 0.0, 30.0);
  FaultInjector never(quiet, 42);
  never.set_topology(&topo);
  EXPECT_TRUE(never.correlated_failures(0).empty());
}

TEST(FaultInjector, CorrelatedFailuresDedupAcrossRules) {
  const net::Topology topo = net::make_geo(net::GeoSpec{});
  FaultPlan p;
  p.correlate(3, 1.0, 30.0);  // rack rule first: its down-time wins
  p.correlate(1, 1.0, 5.0);   // region rule also matches the rack-mates
  FaultInjector injector(p, 9);
  injector.set_topology(&topo);
  const auto fired = injector.correlated_failures(0);
  // Site 0's region is rg0 = sites 0..7; rack-mates 1..3 keep the first
  // rule's 30s, the remaining region-mates 4..7 get the second rule's 5s.
  ASSERT_EQ(fired.size(), 7u);
  for (const auto& [site, down_for] : fired) {
    EXPECT_DOUBLE_EQ(down_for, site <= 3 ? 30.0 : 5.0) << "site " << site;
  }
}

TEST(ChaosAudit, FlagsDomainProblems) {
  {
    // Outage targets a domain no site belongs to.
    std::istringstream in(
        "horizon 100\nsites 24\ngeo 3 2 1 4\nat 10 domain rg9 down\n");
    const io::AuditReport report = audit_chaos(in);
    EXPECT_FALSE(report.ok());
    EXPECT_TRUE(report.has(io::AuditCode::kDomainConfig));
  }
  {
    // Domain actions on a topology with no annotations at all.
    std::istringstream in(
        "horizon 100\nsites 5\nring\nquorum 3 3\nat 10 domain rg0 down\n");
    const io::AuditReport report = audit_chaos(in);
    EXPECT_TRUE(report.has(io::AuditCode::kDomainConfig));
  }
  {
    // Correlation rules without any domain annotations can never fire.
    std::istringstream in(
        "horizon 100\nsites 5\nring\nquorum 3 3\ncorrelate rack 0.5 for 10\n");
    const io::AuditReport report = audit_chaos(in);
    EXPECT_TRUE(report.has(io::AuditCode::kDomainConfig));
  }
  {
    // A one-way cut on a pair with no link.
    std::istringstream in(
        "horizon 100\nsites 5\nring\nquorum 3 3\nat 10 oneway 0 2 down\n");
    const io::AuditReport report = audit_chaos(in);
    EXPECT_TRUE(report.has(io::AuditCode::kChaosUnknownTarget));
  }
  {
    // The healthy geo shape passes clean.
    std::istringstream in(
        "horizon 100\nsites 24\ngeo 3 2 1 4\n"
        "at 10 domain rg0 down\nat 50 domain rg0 up\n"
        "at 20 oneway 0 8 down\ncorrelate rack 0.5 for 10\n"
        "window 5 50 drop 0.3 between rg0 rg1\n");
    const io::AuditReport report = audit_chaos(in);
    EXPECT_TRUE(report.ok()) << "unexpected findings";
  }
}

} // namespace
} // namespace quora::fault
