// Tests for the SVG figure renderer.

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "metrics/experiment.hpp"
#include "net/builders.hpp"
#include "report/svg_plot.hpp"

namespace quora::report {
namespace {

const metrics::CurveResult& small_result() {
  static const metrics::CurveResult r = [] {
    sim::SimConfig config;
    config.warmup_accesses = 1'000;
    config.accesses_per_batch = 6'000;
    metrics::MeasurePolicy policy;
    policy.alphas = {0.0, 0.5, 1.0};
    policy.batch.min_batches = 3;
    policy.batch.max_batches = 3;
    const net::Topology topo = net::make_ring(11);
    return metrics::measure_curves(topo, config, policy);
  }();
  return r;
}

std::string render(const SvgOptions& options = {}) {
  std::ostringstream out;
  write_curve_svg(out, small_result(), options);
  return out.str();
}

std::size_t count(const std::string& text, const std::string& needle) {
  std::size_t n = 0;
  for (std::size_t pos = text.find(needle); pos != std::string::npos;
       pos = text.find(needle, pos + needle.size())) {
    ++n;
  }
  return n;
}

TEST(SvgPlot, WellFormedDocument) {
  const std::string svg = render();
  EXPECT_EQ(svg.rfind("<svg xmlns=\"http://www.w3.org/2000/svg\"", 0), 0u);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  // Every opened text/line/polyline/rect is self-closed or closed.
  EXPECT_EQ(count(svg, "<text"), count(svg, "</text>"));
}

TEST(SvgPlot, OnePolylinePerAlpha) {
  const std::string svg = render();
  EXPECT_EQ(count(svg, "<polyline"), small_result().alphas.size());
  EXPECT_EQ(count(svg, "alpha = "), small_result().alphas.size());
}

TEST(SvgPlot, TitleDefaultsToTopologyAndCanBeOverridden) {
  EXPECT_NE(render().find("ring-11"), std::string::npos);
  SvgOptions options;
  options.title = "Custom Title";
  EXPECT_NE(render(options).find("Custom Title"), std::string::npos);
}

TEST(SvgPlot, WhiskersCanBeDisabled) {
  SvgOptions none;
  none.whisker_stride = 0;
  SvgOptions dense;
  dense.whisker_stride = 1;
  EXPECT_GT(count(render(dense), "<line"), count(render(none), "<line"));
}

TEST(SvgPlot, CoordinatesStayInsideTheViewBox) {
  const std::string svg = render();
  std::istringstream in(svg);
  // All polyline points must lie in [0, width] x [0, height].
  std::string line;
  while (std::getline(in, line)) {
    const auto start = line.find("points=\"");
    if (start == std::string::npos) continue;
    std::istringstream points(line.substr(start + 8));
    std::string pair;
    while (points >> pair && pair.find('"') == std::string::npos) {
      const auto comma = pair.find(',');
      ASSERT_NE(comma, std::string::npos);
      const double x = std::stod(pair.substr(0, comma));
      const double y = std::stod(pair.substr(comma + 1));
      EXPECT_GE(x, 0.0);
      EXPECT_LE(x, 720.0);
      EXPECT_GE(y, 0.0);
      EXPECT_LE(y, 480.0);
    }
  }
}

TEST(SvgPlot, RejectsEmptyResult) {
  const metrics::CurveResult empty;
  std::ostringstream out;
  EXPECT_THROW(write_curve_svg(out, empty), std::invalid_argument);
}

TEST(SvgPlot, FileWriterFailsOnBadPath) {
  EXPECT_THROW(write_curve_svg_file("/nonexistent/dir/x.svg", small_result()),
               std::runtime_error);
}

} // namespace
} // namespace quora::report
