// Tests for the discrete-event simulator: configuration algebra,
// determinism, stationary statistics matching the paper's model, failure
// profiles, observers, and the parallel batch helper.

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <mutex>
#include <set>
#include <vector>

#include "net/builders.hpp"
#include "sim/batch.hpp"
#include "sim/simulator.hpp"

namespace quora::sim {
namespace {

TEST(SimConfig, PaperDefaults) {
  const SimConfig config;
  EXPECT_DOUBLE_EQ(config.mu_access, 1.0);
  EXPECT_DOUBLE_EQ(config.mu_fail(), 128.0);
  // reliability = mu_f / (mu_f + mu_r) must give exactly 0.96.
  EXPECT_NEAR(config.mu_fail() / (config.mu_fail() + config.mu_repair()), 0.96,
              1e-12);
  EXPECT_EQ(config.warmup_accesses, 100'000u);
  EXPECT_EQ(config.accesses_per_batch, 1'000'000u);
}

TEST(SimConfig, Validation) {
  SimConfig config;
  config.mu_access = 0.0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config = SimConfig{};
  config.rho = -1.0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config = SimConfig{};
  config.reliability = 1.0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
}

TEST(AccessSpec, Validation) {
  AccessSpec spec;
  spec.alpha = 1.5;
  EXPECT_THROW(spec.validate(5), std::invalid_argument);
  spec = AccessSpec{};
  spec.read_weights = {1.0, 2.0};
  EXPECT_THROW(spec.validate(5), std::invalid_argument);
  spec.read_weights.resize(5, 1.0);
  EXPECT_NO_THROW(spec.validate(5));
}

TEST(FailureProfile, Validation) {
  FailureProfile profile;
  EXPECT_NO_THROW(profile.validate(3, 3));
  profile.site_mu_fail = {1.0, 2.0, 3.0};
  EXPECT_THROW(profile.validate(3, 3), std::invalid_argument);  // missing repair
  profile.site_mu_repair = {1.0, 1.0};
  EXPECT_THROW(profile.validate(3, 3), std::invalid_argument);  // size mismatch
  profile.site_mu_repair = {1.0, 1.0, 1.0};
  EXPECT_NO_THROW(profile.validate(3, 3));
  profile.site_mu_fail[1] = 0.0;
  EXPECT_THROW(profile.validate(3, 3), std::invalid_argument);
}

TEST(FailureProfile, FromReliabilities) {
  const SimConfig config;
  const auto profile = FailureProfile::from_reliabilities(
      config, {0.96, 1.0}, {0.5});
  ASSERT_EQ(profile.site_mu_fail.size(), 2u);
  // reliability .96 with the config's repair scale reproduces mu_fail = 128.
  EXPECT_NEAR(profile.site_mu_fail[0], config.mu_fail(), 1e-9);
  EXPECT_TRUE(std::isinf(profile.site_mu_fail[1]));  // never fails
  EXPECT_NEAR(profile.link_mu_fail[0], config.mu_repair(), 1e-9);  // 50/50
  EXPECT_THROW(FailureProfile::from_reliabilities(config, {0.0}, {}),
               std::invalid_argument);
}

class CountingObserver : public AccessObserver {
public:
  void on_access(const Simulator& sim, const AccessEvent& ev) override {
    ++count;
    reads += ev.is_read ? 1 : 0;
    sites.insert(ev.site);
    last_time = ev.time;
    up_votes += sim.tracker().component_votes(ev.site);
  }
  std::uint64_t count = 0;
  std::uint64_t reads = 0;
  std::uint64_t up_votes = 0;
  double last_time = 0.0;
  std::set<net::SiteId> sites;
};

TEST(Simulator, RunsExactlyTheRequestedAccesses) {
  const net::Topology topo = net::make_ring(10);
  Simulator sim(topo, SimConfig{}, AccessSpec{}, 1);
  CountingObserver obs;
  sim.add_access_observer(&obs);
  sim.run_accesses(500);
  EXPECT_EQ(obs.count, 500u);
  EXPECT_EQ(sim.counters().accesses, 500u);
}

TEST(Simulator, DeterministicPerSeedAndStream) {
  const net::Topology topo = net::make_ring_with_chords(20, 3);
  const auto run = [&](std::uint64_t seed, std::uint64_t stream) {
    Simulator sim(topo, SimConfig{}, AccessSpec{}, seed, stream);
    sim.run_accesses(5'000);
    return std::tuple{sim.now(), sim.counters().site_failures,
                      sim.counters().link_failures,
                      sim.counters().site_recoveries};
  };
  EXPECT_EQ(run(7, 0), run(7, 0));
  EXPECT_NE(run(7, 0), run(7, 1));
  EXPECT_NE(run(7, 0), run(8, 0));
}

TEST(Simulator, ResetReplaysExactly) {
  const net::Topology topo = net::make_ring(12);
  Simulator sim(topo, SimConfig{}, AccessSpec{}, 77);
  sim.run_accesses(3'000);
  const double t1 = sim.now();
  const auto fails1 = sim.counters().site_failures;
  sim.reset();
  EXPECT_EQ(sim.now(), 0.0);
  sim.run_accesses(3'000);
  EXPECT_DOUBLE_EQ(sim.now(), t1);
  EXPECT_EQ(sim.counters().site_failures, fails1);
}

TEST(Simulator, AccessRateMatchesModel) {
  // n sites each submitting at rate 1/mu_access => system rate n, so N
  // accesses take ~N/n time units.
  const net::Topology topo = net::make_ring(25);
  Simulator sim(topo, SimConfig{}, AccessSpec{}, 3);
  sim.run_accesses(50'000);
  EXPECT_NEAR(sim.now(), 50'000.0 / 25.0, 50'000.0 / 25.0 * 0.05);
}

TEST(Simulator, AlphaControlsReadFraction) {
  const net::Topology topo = net::make_ring(10);
  AccessSpec spec;
  spec.alpha = 0.25;
  Simulator sim(topo, SimConfig{}, spec, 5);
  CountingObserver obs;
  sim.add_access_observer(&obs);
  sim.run_accesses(40'000);
  EXPECT_NEAR(static_cast<double>(obs.reads) / static_cast<double>(obs.count), 0.25,
              0.01);
}

TEST(Simulator, SetAccessAlphaTakesEffect) {
  const net::Topology topo = net::make_ring(10);
  AccessSpec spec;
  spec.alpha = 0.0;
  Simulator sim(topo, SimConfig{}, spec, 5);
  CountingObserver obs;
  sim.add_access_observer(&obs);
  sim.run_accesses(1'000);
  EXPECT_EQ(obs.reads, 0u);
  sim.set_access_alpha(1.0);
  sim.run_accesses(1'000);
  EXPECT_EQ(obs.reads, 1'000u);
  EXPECT_THROW(sim.set_access_alpha(-0.1), std::invalid_argument);
}

TEST(Simulator, UniformAccessTouchesEverySite) {
  const net::Topology topo = net::make_ring(15);
  Simulator sim(topo, SimConfig{}, AccessSpec{}, 6);
  CountingObserver obs;
  sim.add_access_observer(&obs);
  sim.run_accesses(5'000);
  EXPECT_EQ(obs.sites.size(), 15u);
}

TEST(Simulator, WeightedAccessRespectsWeights) {
  const net::Topology topo = net::make_ring(4);
  AccessSpec spec;
  spec.alpha = 1.0;  // reads only — exercises read_weights
  spec.read_weights = {0.0, 0.0, 1.0, 0.0};
  Simulator sim(topo, SimConfig{}, spec, 6);
  CountingObserver obs;
  sim.add_access_observer(&obs);
  sim.run_accesses(2'000);
  EXPECT_EQ(obs.sites.size(), 1u);
  EXPECT_TRUE(obs.sites.contains(2));
}

TEST(Simulator, StationarySiteReliabilityIsNinetySix) {
  // PASTA: accesses sample the stationary distribution, so the fraction
  // of accesses finding their submitting site up (component_votes > 0)
  // estimates per-site availability — 0.96 in the paper's model.
  class UpCounter : public AccessObserver {
  public:
    void on_access(const Simulator& sim, const AccessEvent& ev) override {
      ++total;
      if (sim.tracker().component_votes(ev.site) > 0) ++up_count;
    }
    std::uint64_t total = 0;
    std::uint64_t up_count = 0;
  } counter;

  const net::Topology topo = net::make_ring(10);
  Simulator sim(topo, SimConfig{}, AccessSpec{}, 11);
  sim.run_accesses(20'000);  // warm up past the all-up initial state
  sim.add_access_observer(&counter);
  sim.run_accesses(200'000);
  EXPECT_NEAR(
      static_cast<double>(counter.up_count) / static_cast<double>(counter.total),
      0.96, 0.01);
}

TEST(Simulator, FailuresBalanceRecoveries) {
  const net::Topology topo = net::make_ring(10);
  Simulator sim(topo, SimConfig{}, AccessSpec{}, 13);
  sim.run_accesses(100'000);
  const auto& c = sim.counters();
  EXPECT_GT(c.site_failures, 0u);
  EXPECT_GT(c.link_failures, 0u);
  // Each recovery follows a failure; counts differ by at most the number
  // of currently-down components.
  EXPECT_LE(c.site_failures - c.site_recoveries, 10u);
  EXPECT_LE(c.link_failures - c.link_recoveries, 10u);
}

TEST(Simulator, InfiniteMuFailNeverFails) {
  const net::Topology topo = net::make_star(6, 0);
  SimConfig config;
  // Hub fails often; leaves and links never.
  std::vector<double> site_rel(6, 1.0);
  site_rel[0] = 0.5;
  const std::vector<double> link_rel(topo.link_count(), 1.0);
  const auto profile = FailureProfile::from_reliabilities(config, site_rel, link_rel);
  Simulator sim(topo, config, AccessSpec{}, profile, 17);
  sim.run_accesses(50'000);
  EXPECT_GT(sim.counters().site_failures, 0u);
  EXPECT_EQ(sim.counters().link_failures, 0u);
  // All failures were the hub's.
  for (net::SiteId s = 1; s < 6; ++s) EXPECT_TRUE(sim.network().is_site_up(s));
}

TEST(Simulator, NetworkObserverSeesEveryChange) {
  class ChangeCounter : public NetworkObserver {
  public:
    void on_network_change(const Simulator&, EventKind kind, std::uint32_t) override {
      ++counts[static_cast<int>(kind)];
    }
    std::array<std::uint64_t, 5> counts{};
  };
  const net::Topology topo = net::make_ring(8);
  Simulator sim(topo, SimConfig{}, AccessSpec{}, 19);
  ChangeCounter counter;
  sim.add_network_observer(&counter);
  sim.run_accesses(50'000);
  const auto& c = sim.counters();
  EXPECT_EQ(counter.counts[static_cast<int>(EventKind::kSiteFail)], c.site_failures);
  EXPECT_EQ(counter.counts[static_cast<int>(EventKind::kSiteRecover)],
            c.site_recoveries);
  EXPECT_EQ(counter.counts[static_cast<int>(EventKind::kLinkFail)], c.link_failures);
  EXPECT_EQ(counter.counts[static_cast<int>(EventKind::kLinkRecover)],
            c.link_recoveries);
}

TEST(EventQueue, OrdersByTimeThenInsertion) {
  EventQueue queue;
  queue.push(2.0, EventKind::kAccess, 0);
  queue.push(1.0, EventKind::kSiteFail, 1);
  queue.push(1.0, EventKind::kLinkFail, 2);  // same time, later insertion
  const Event a = queue.pop();
  const Event b = queue.pop();
  const Event c = queue.pop();
  EXPECT_EQ(a.kind, EventKind::kSiteFail);
  EXPECT_EQ(b.kind, EventKind::kLinkFail);
  EXPECT_EQ(c.kind, EventKind::kAccess);
  EXPECT_TRUE(queue.empty());
}

TEST(ForEachBatch, RunsEveryIndexOnce) {
  std::mutex mu;
  std::vector<std::uint32_t> seen;
  for_each_batch(17, 4, [&](std::uint32_t b) {
    const std::scoped_lock lock(mu);
    seen.push_back(b);
  });
  EXPECT_EQ(seen.size(), 17u);
  std::sort(seen.begin(), seen.end());
  for (std::uint32_t i = 0; i < 17; ++i) EXPECT_EQ(seen[i], i);
}

TEST(ForEachBatch, SerialWhenOneThread) {
  std::vector<std::uint32_t> order;
  for_each_batch(5, 1, [&](std::uint32_t b) { order.push_back(b); });
  EXPECT_EQ(order, (std::vector<std::uint32_t>{0, 1, 2, 3, 4}));
}

TEST(ForEachBatch, PropagatesExceptions) {
  EXPECT_THROW(
      for_each_batch(8, 4,
                     [](std::uint32_t b) {
                       if (b == 3) throw std::runtime_error("boom");
                     }),
      std::runtime_error);
}

TEST(ForEachBatch, ZeroBatchesIsNoop) {
  bool called = false;
  for_each_batch(0, 4, [&](std::uint32_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(SimulatorStepOne, MatchesTheBatchRunEventForEvent) {
  // step_one is the same dispatch run_accesses performs per iteration, so
  // stepping N accesses by hand must land on the identical trajectory.
  const net::Topology topo = net::make_ring(5);
  Simulator batch(topo, SimConfig{}, AccessSpec{}, /*seed=*/42);
  Simulator stepped(topo, SimConfig{}, AccessSpec{}, /*seed=*/42);

  batch.run_accesses(500);
  std::uint64_t accesses = 0;
  while (accesses < 500) {
    if (stepped.step_one().kind == EventKind::kAccess) ++accesses;
  }

  EXPECT_DOUBLE_EQ(stepped.now(), batch.now());
  EXPECT_EQ(stepped.counters().accesses, batch.counters().accesses);
  EXPECT_EQ(stepped.counters().site_failures, batch.counters().site_failures);
  EXPECT_EQ(stepped.counters().link_failures, batch.counters().link_failures);
  for (net::SiteId s = 0; s < topo.site_count(); ++s) {
    EXPECT_EQ(stepped.network().is_site_up(s), batch.network().is_site_up(s));
  }
}

TEST(SimulatorStepOne, CheckpointRestoreForksTheRun) {
  // Snapshot by value + rebind: the copy continues the run identically,
  // and advancing it leaves the original untouched.
  const net::Topology topo = net::make_ring(5);
  Simulator sim(topo, SimConfig{}, AccessSpec{}, /*seed=*/7);
  sim.run_accesses(200);

  Simulator fork = sim;
  fork.rebind();
  const double paused_at = sim.now();

  Simulator reference(topo, SimConfig{}, AccessSpec{}, /*seed=*/7);
  reference.run_accesses(200);
  fork.run_accesses(300);
  reference.run_accesses(300);

  EXPECT_DOUBLE_EQ(sim.now(), paused_at);  // original undisturbed
  EXPECT_DOUBLE_EQ(fork.now(), reference.now());
  EXPECT_EQ(fork.counters().accesses, reference.counters().accesses);
  EXPECT_EQ(fork.counters().site_failures,
            reference.counters().site_failures);
  EXPECT_EQ(fork.counters().link_recoveries,
            reference.counters().link_recoveries);

  // The tracker of the fork must be watching the fork's own network:
  // component queries agree with the reference at the same instant.
  for (net::SiteId s = 0; s < topo.site_count(); ++s) {
    EXPECT_EQ(fork.tracker().component_votes(s),
              reference.tracker().component_votes(s));
  }
}

} // namespace
} // namespace quora::sim
