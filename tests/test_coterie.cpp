// Tests for the coterie library (Garcia-Molina & Barbara's framework,
// which the paper's footnote 1 credits as the general mechanism behind
// vote/quorum assignments).

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "quorum/coterie.hpp"
#include "quorum/quorum_spec.hpp"

namespace quora::quorum {
namespace {

constexpr SiteSet set_of(std::initializer_list<int> sites) {
  SiteSet s = 0;
  for (const int i : sites) s |= SiteSet{1} << i;
  return s;
}

TEST(SiteSetOps, Basics) {
  EXPECT_TRUE(subset_of(set_of({0, 2}), set_of({0, 1, 2})));
  EXPECT_FALSE(subset_of(set_of({0, 3}), set_of({0, 1, 2})));
  EXPECT_TRUE(intersects(set_of({0, 1}), set_of({1, 2})));
  EXPECT_FALSE(intersects(set_of({0, 1}), set_of({2, 3})));
  EXPECT_EQ(popcount(set_of({0, 5, 9})), 3);
}

TEST(Coterie, MajorityOfThreeIsACoterie) {
  const Coterie c({set_of({0, 1}), set_of({0, 2}), set_of({1, 2})});
  EXPECT_TRUE(c.has_intersection_property());
  EXPECT_TRUE(c.is_minimal());
  EXPECT_TRUE(c.is_coterie());
}

TEST(Coterie, NonIntersectingIsNotACoterie) {
  const Coterie c({set_of({0}), set_of({1})});
  EXPECT_FALSE(c.has_intersection_property());
  EXPECT_FALSE(c.is_coterie());
}

TEST(Coterie, NonMinimalIsNotACoterie) {
  const Coterie c({set_of({0}), set_of({0, 1})});
  EXPECT_TRUE(c.has_intersection_property());
  EXPECT_FALSE(c.is_minimal());
  EXPECT_FALSE(c.is_coterie());
}

TEST(Coterie, EmptyAndDegenerate) {
  EXPECT_FALSE(Coterie{}.is_coterie());
  EXPECT_FALSE(Coterie({SiteSet{0}}).is_coterie());  // empty quorum
  // A singleton quorum is the primary-copy coterie.
  EXPECT_TRUE(Coterie({set_of({3})}).is_coterie());
}

TEST(Coterie, DeduplicatesOnConstruction) {
  const Coterie c({set_of({0, 1}), set_of({0, 1})});
  EXPECT_EQ(c.quorums().size(), 1u);
}

TEST(Coterie, CanOperate) {
  const Coterie c({set_of({0, 1}), set_of({0, 2}), set_of({1, 2})});
  EXPECT_TRUE(c.can_operate(set_of({0, 1})));
  EXPECT_TRUE(c.can_operate(set_of({0, 1, 2})));
  EXPECT_FALSE(c.can_operate(set_of({0})));
  EXPECT_FALSE(c.can_operate(set_of({3, 4})));
}

TEST(Coterie, DominationClassicExample) {
  // GM&B: the primary-copy coterie {{0}} dominates the majority coterie
  // on {0,1,2}? No — {1,2} does not contain {0}. But {{0}} dominates
  // {{0,1},{0,2}} since every quorum there contains {0}.
  const Coterie primary({set_of({0})});
  const Coterie pairs_through_0({set_of({0, 1}), set_of({0, 2})});
  const Coterie majority3({set_of({0, 1}), set_of({0, 2}), set_of({1, 2})});

  EXPECT_TRUE(primary.dominates(pairs_through_0));
  EXPECT_FALSE(primary.dominates(majority3));
  EXPECT_FALSE(pairs_through_0.dominates(primary));
  EXPECT_FALSE(majority3.dominates(majority3));  // never self-dominates
}

TEST(Coterie, DominatorOperatesWheneverDominatedCan) {
  const Coterie dominator({set_of({0})});
  const Coterie dominated({set_of({0, 1}), set_of({0, 2})});
  ASSERT_TRUE(dominator.dominates(dominated));
  for (SiteSet avail = 0; avail < 8; ++avail) {
    if (dominated.can_operate(avail)) {
      EXPECT_TRUE(dominator.can_operate(avail)) << "avail=" << avail;
    }
  }
}

TEST(CoterieFromVotes, UniformMajorityOfFive) {
  const std::vector<net::Vote> votes(5, 1);
  const Coterie c = coterie_from_votes(votes, 3);
  EXPECT_TRUE(c.is_coterie());
  EXPECT_EQ(c.quorums().size(), 10u);  // C(5,3)
  for (const SiteSet q : c.quorums()) EXPECT_EQ(popcount(q), 3);
}

TEST(CoterieFromVotes, WeightedVotes) {
  // Votes {3,1,1}: threshold 3 -> {0} alone, or {1,2} together... 1+1=2<3,
  // so the only minimal groups are {0} (3 votes) and none without site 0.
  const std::vector<net::Vote> votes{3, 1, 1};
  const Coterie c = coterie_from_votes(votes, 3);
  ASSERT_EQ(c.quorums().size(), 1u);
  EXPECT_EQ(c.quorums()[0], set_of({0}));
}

TEST(CoterieFromVotes, MinimalityHoldsEverywhere) {
  const std::vector<net::Vote> votes{4, 3, 2, 2, 1};
  const Coterie c = coterie_from_votes(votes, 7);  // majority of 12
  EXPECT_TRUE(c.is_minimal());
  // Every quorum truly reaches the threshold; every proper subset misses.
  for (const SiteSet q : c.quorums()) {
    net::Vote sum = 0;
    for (std::size_t i = 0; i < votes.size(); ++i) {
      if (q & (SiteSet{1} << i)) sum += votes[i];
    }
    EXPECT_GE(sum, 7u);
    for (std::size_t i = 0; i < votes.size(); ++i) {
      if (q & (SiteSet{1} << i)) {
        EXPECT_LT(sum - votes[i], 7u);
      }
    }
  }
}

TEST(CoterieFromVotes, MajorityThresholdYieldsCoterie) {
  // Any threshold above half the total votes produces a valid coterie.
  const std::vector<net::Vote> votes{2, 2, 1, 1, 1};
  const Coterie c = coterie_from_votes(votes, 4);  // total 7, 4 > 3.5
  EXPECT_TRUE(c.is_coterie());
}

TEST(CoterieFromVotes, UnreachableThresholdIsEmpty) {
  const std::vector<net::Vote> votes{1, 1};
  const Coterie c = coterie_from_votes(votes, 5);
  EXPECT_TRUE(c.empty());
  EXPECT_FALSE(c.is_coterie());
}

TEST(CoterieFromVotes, Guards) {
  const std::vector<net::Vote> too_many(25, 1);
  EXPECT_THROW(coterie_from_votes(too_many, 13), std::invalid_argument);
  const std::vector<net::Vote> votes{1, 1};
  EXPECT_THROW(coterie_from_votes(votes, 0), std::invalid_argument);
}

TEST(Bicoterie, QuorumConditionsMapToSetIntersections) {
  const std::vector<net::Vote> votes(5, 1);
  const net::Vote total = 5;
  // Valid assignment: q_r = 2, q_w = 4 (2 + 4 > 5, 2*4 > 5).
  const Coterie reads = coterie_from_votes(votes, 2);
  const Coterie writes = coterie_from_votes(votes, 4);
  EXPECT_TRUE((QuorumSpec{2, 4}.valid(total)));
  EXPECT_TRUE(bicoterie_consistent(reads, writes));

  // Invalid assignment: q_r = 1, q_w = 4 (1 + 4 = T): a singleton read
  // group misses a 4-site write group.
  const Coterie reads1 = coterie_from_votes(votes, 1);
  EXPECT_FALSE((QuorumSpec{1, 4}.valid(total)));
  EXPECT_FALSE(bicoterie_consistent(reads1, writes));

  // Invalid writes: q_w = 2 (2*2 < 5): write groups don't all intersect.
  const Coterie writes2 = coterie_from_votes(votes, 2);
  EXPECT_FALSE(bicoterie_consistent(reads, writes2));
}

TEST(Bicoterie, EveryCanonicalAssignmentIsConsistent) {
  const std::vector<net::Vote> votes(7, 1);
  for (net::Vote q_r = 1; q_r <= max_read_quorum(7); ++q_r) {
    const QuorumSpec spec = from_read_quorum(7, q_r);
    const Coterie reads = coterie_from_votes(votes, spec.q_r);
    const Coterie writes = coterie_from_votes(votes, spec.q_w);
    EXPECT_TRUE(bicoterie_consistent(reads, writes)) << "q_r=" << q_r;
  }
}

TEST(Bicoterie, EmptyWritesInconsistent) {
  const Coterie reads({set_of({0})});
  EXPECT_FALSE(bicoterie_consistent(reads, Coterie{}));
}

} // namespace
} // namespace quora::quorum
