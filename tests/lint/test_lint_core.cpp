// Unit tests for quora_lint's core library: the lexer, the suppression
// and baseline parsers, the token-level checks, and the path-scope map.
// The end-to-end binary behaviour (exit codes, JSON, engines) is covered
// by test_lint_fixtures.cpp.

#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "checks_token.hpp"
#include "lint_driver.hpp"
#include "lint_types.hpp"
#include "source_scan.hpp"

namespace {

using namespace quora::lint;

// Assembled at runtime so linting the test sources never mistakes these
// literals for real suppression directives.
std::string marker() { return std::string("quora-lint") + ":"; }

CheckScope all_scopes() {
  CheckScope s;
  s.macro_args = s.entropy = s.unordered = s.raw_obs = s.concurrency = true;
  return s;
}

std::vector<Finding> check(const std::string& text,
                           CheckScope scope = all_scopes()) {
  std::vector<Finding> out;
  run_token_checks("fixture.cpp", text, scope, &out);
  return out;
}

std::multiset<LintCode> codes(const std::vector<Finding>& findings) {
  std::multiset<LintCode> out;
  for (const Finding& f : findings) out.insert(f.code);
  return out;
}

// ---------------------------------------------------------------- lexer

TEST(LintLexer, SkipsCommentsStringsAndPreprocessorLines) {
  const auto toks = lex(
      "#define QUORA_TRACE(...) \\\n  do_not_see_me(__VA_ARGS__)\n"
      "// line comment rand()\n"
      "/* block\n comment time() */\n"
      "const char* s = \"rand() inside a string\";\n"
      "const char* r = R\"(raw rand())\";\n");
  for (const Token& t : toks) {
    EXPECT_NE(t.text, "do_not_see_me");
    EXPECT_NE(t.text, "rand");
    EXPECT_NE(t.text, "time");
  }
  // The declaration identifiers themselves do survive.
  std::vector<std::string> idents;
  for (const Token& t : toks) {
    if (t.kind == Token::Kind::kIdent) idents.push_back(t.text);
  }
  EXPECT_EQ(idents, (std::vector<std::string>{"const", "char", "s", "const",
                                              "char", "r"}));
}

TEST(LintLexer, TracksLinesAndMatchesLongOperatorsGreedily) {
  const auto toks = lex("a <<= b;\nc ->* d;");
  ASSERT_GE(toks.size(), 8u);
  EXPECT_EQ(toks[1].text, "<<=");
  EXPECT_EQ(toks[1].kind, Token::Kind::kPunct);
  EXPECT_EQ(toks[1].line, 1u);
  EXPECT_EQ(toks[5].text, "->*");
  EXPECT_EQ(toks[5].line, 2u);
}

TEST(LintLexer, LexesNumbersWithExponentsAsOneToken) {
  const auto toks = lex("x = 1e-5 + 0x1p+3;");
  std::vector<std::string> nums;
  for (const Token& t : toks) {
    if (t.kind == Token::Kind::kNumber) nums.push_back(t.text);
  }
  EXPECT_EQ(nums, (std::vector<std::string>{"1e-5", "0x1p+3"}));
}

// ----------------------------------------------------------- code table

TEST(LintCodes, TagsRoundTripAndUnknownTagsAreRejected) {
  const LintCode all[] = {
      LintCode::kL001SideEffectObsArg, LintCode::kL002SideEffectContractArg,
      LintCode::kL003ForbiddenEntropy, LintCode::kL004UnorderedIteration,
      LintCode::kL005RawObsCall,       LintCode::kL006HotPathAllocation,
      LintCode::kL007CrossShardState,  LintCode::kL008UnsharedGlobalState,
      LintCode::kL009RawConcurrencyPrimitive};
  static_assert(sizeof(all) / sizeof(all[0]) == kLintCodeCount,
                "new codes must join the round-trip test");
  for (const LintCode c : all) {
    LintCode parsed;
    ASSERT_TRUE(parse_lint_code_tag(lint_code_tag(c), &parsed));
    EXPECT_EQ(parsed, c);
  }
  LintCode parsed;
  EXPECT_TRUE(parse_lint_code_tag("l003", &parsed));  // case-insensitive
  EXPECT_EQ(parsed, LintCode::kL003ForbiddenEntropy);
  EXPECT_FALSE(parse_lint_code_tag("L999", nullptr));
  EXPECT_FALSE(parse_lint_code_tag("X001", nullptr));
  EXPECT_FALSE(parse_lint_code_tag("L0011", nullptr));
}

// --------------------------------------------------------- suppressions

TEST(LintSuppressions, AllowsOwnLineAndNextLine) {
  const std::string text = "int a;\n// " + marker() +
                           " allow(L001) counter is obs-only\nint b;\nint c;\n";
  const Suppressions sup = scan_suppressions(text);
  EXPECT_TRUE(sup.problems.empty());
  EXPECT_TRUE(sup.allows(LintCode::kL001SideEffectObsArg, 2));  // own line
  EXPECT_TRUE(sup.allows(LintCode::kL001SideEffectObsArg, 3));  // next line
  EXPECT_FALSE(sup.allows(LintCode::kL001SideEffectObsArg, 4));
  EXPECT_FALSE(sup.allows(LintCode::kL002SideEffectContractArg, 3));
}

TEST(LintSuppressions, ParsesMultipleCodesInOneDirective) {
  const std::string text =
      "x(); // " + marker() + " allow(L003, L004) reporting-only path\n";
  const Suppressions sup = scan_suppressions(text);
  EXPECT_TRUE(sup.problems.empty());
  EXPECT_TRUE(sup.allows(LintCode::kL003ForbiddenEntropy, 1));
  EXPECT_TRUE(sup.allows(LintCode::kL004UnorderedIteration, 1));
  EXPECT_FALSE(sup.allows(LintCode::kL005RawObsCall, 1));
}

TEST(LintSuppressions, MalformedDirectivesAreReportedNotIgnored) {
  const std::string text = "// " + marker() + " allow(L001)\n" +      // no reason
                           "// " + marker() + " allow(L999) bogus\n" +  // bad tag
                           "// " + marker() + " allowed(L001) typo\n";  // keyword
  const Suppressions sup = scan_suppressions(text);
  ASSERT_EQ(sup.problems.size(), 3u);
  EXPECT_EQ(sup.problems[0].first, 1u);
  EXPECT_EQ(sup.problems[1].first, 2u);
  EXPECT_EQ(sup.problems[2].first, 3u);
  EXPECT_TRUE(sup.allowed.empty());
}

// ------------------------------------------------------------- baseline

TEST(LintBaseline, ParsesEntriesAndMatchesFindings) {
  std::vector<std::string> problems;
  const Baseline b = Baseline::parse(
      "# comment\n"
      "L003\tsrc/sim/simulator.cpp\t42\n"
      "L005\tsrc/core/planner.cpp\t7\n",
      &problems);
  EXPECT_TRUE(problems.empty());
  EXPECT_EQ(b.size(), 2u);
  Finding f;
  f.code = LintCode::kL003ForbiddenEntropy;
  f.path = "src/sim/simulator.cpp";
  f.line = 42;
  EXPECT_TRUE(b.contains(f));
  f.line = 43;  // baselines pin exact lines: edits re-surface the finding
  EXPECT_FALSE(b.contains(f));
}

TEST(LintBaseline, MalformedLinesAreReported) {
  std::vector<std::string> problems;
  const Baseline b = Baseline::parse(
      "L001 src/a.cpp 3\n"      // spaces, not tabs
      "L777\tsrc/a.cpp\t3\n"    // unknown tag
      "L001\tsrc/a.cpp\tzz\n",  // line not a number
      &problems);
  EXPECT_EQ(b.size(), 0u);
  EXPECT_EQ(problems.size(), 3u);
}

TEST(LintBaseline, RenderRoundTripsThroughParse) {
  Finding f;
  f.code = LintCode::kL004UnorderedIteration;
  f.path = "src/report/table.cpp";
  f.line = 12;
  const std::string text = Baseline::render({f});
  std::vector<std::string> problems;
  const Baseline b = Baseline::parse(text, &problems);
  EXPECT_TRUE(problems.empty());
  ASSERT_EQ(b.size(), 1u);
  EXPECT_TRUE(b.contains(f));
}

// --------------------------------------------------------- token checks

TEST(LintChecksL001, FlagsMutationsInObsMacroArguments) {
  const auto findings = check(
      "void f() {\n"
      "  QUORA_TRACE(trace_, step, attempts++);\n"
      "  QUORA_METRIC_ADD(obs_grants, total += 1);\n"
      "  QUORA_METRIC_RECORD(obs_latency, gen.next_double());\n"
      "}\n");
  EXPECT_EQ(codes(findings),
            (std::multiset<LintCode>{LintCode::kL001SideEffectObsArg,
                                     LintCode::kL001SideEffectObsArg,
                                     LintCode::kL001SideEffectObsArg}));
  EXPECT_EQ(findings[0].line, 2u);
}

TEST(LintChecksL001, PureArgumentsAndObsOnlyStateAreClean) {
  const auto findings = check(
      "void f() {\n"
      "  QUORA_TRACE(trace_, step, attempts + 1);\n"
      "  QUORA_METRIC_SET(obs_depth, depth);\n"
      "  QUORA_OBS_ONLY(obs_window = attempts;)\n"  // obs_* state may mutate
      "}\n");
  EXPECT_TRUE(findings.empty());
}

TEST(LintChecksL002, FlagsMutationsInContractArguments) {
  const auto findings = check(
      "void f() {\n"
      "  QUORA_ASSERT(++steps < limit, \"m\");\n"
      "  QUORA_PRECONDITION(total = compute(), \"m\");\n"
      "  QUORA_INVARIANT(set.insert(3).second, \"m\");\n"
      "  QUORA_ASSERT(total == compute(), \"pure\");\n"
      "}\n");
  EXPECT_EQ(codes(findings),
            (std::multiset<LintCode>{LintCode::kL002SideEffectContractArg,
                                     LintCode::kL002SideEffectContractArg,
                                     LintCode::kL002SideEffectContractArg}));
}

TEST(LintChecksL003, FlagsEntropySourcesButNotPlainIdentifiers) {
  const auto findings = check(
      "void f() {\n"
      "  std::random_device rd;\n"
      "  std::mt19937 mt(1);\n"
      "  int r = std::rand();\n"
      "  auto t = std::chrono::steady_clock::now();\n"
      "  std::time_t w = std::time(nullptr);\n"
      "  double time = 0;\n"   // identifier named `time`, not a call
      "  (void)time;\n"
      "}\n");
  EXPECT_EQ(codes(findings).count(LintCode::kL003ForbiddenEntropy), 5u);
}

TEST(LintChecksL004, FlagsIterationOverDeclaredUnorderedContainers) {
  const auto findings = check(
      "std::unordered_map<int, long> table;\n"
      "std::vector<long> ordered;\n"
      "long f() {\n"
      "  long s = 0;\n"
      "  for (const auto& kv : table) s += kv.second;\n"
      "  for (long v : ordered) s += v;\n"
      "  s += std::accumulate(table.begin(), table.end(), 0L);\n"
      "  if (table.find(3) != table.end()) s += 1;\n"  // lookups are fine
      "  return s;\n"
      "}\n");
  EXPECT_EQ(codes(findings),
            (std::multiset<LintCode>{LintCode::kL004UnorderedIteration,
                                     LintCode::kL004UnorderedIteration}));
  EXPECT_EQ(findings[0].line, 5u);
  EXPECT_EQ(findings[1].line, 7u);
}

TEST(LintChecksL005, FlagsRawCallsByNamingConvention) {
  const auto findings = check(
      "void f() {\n"
      "  trace_->record(1, 2);\n"
      "  obs_grants_.add(1);\n"
      "  obs_depth_.set(4);\n"
      "  hist.add(7);\n"          // not obs_*: stats histograms are fine
      "  trace_->set_clock(&c);\n"  // wiring, not a record call
      "}\n");
  EXPECT_EQ(codes(findings),
            (std::multiset<LintCode>{LintCode::kL005RawObsCall,
                                     LintCode::kL005RawObsCall,
                                     LintCode::kL005RawObsCall}));
}

TEST(LintChecksL009, FlagsRawPrimitivesOutsideShardSharedDeclarations) {
  const auto findings = check(
      "std::mutex table_lock;\n"
      "std::atomic<int> inflight{0};\n"
      "thread_local int scratch = 0;\n"
      "QUORA_SHARD_SHARED std::atomic<long> epoch{0};\n"
      "void f() {\n"
      "  std::atomic_int hits{0};\n"
      "  inflight += 1;\n"        // use of a declared name: decl-site only
      "  int mutex = 0;\n"        // bare identifier, not std::-qualified
      "  (void)mutex; (void)hits;\n"
      "}\n");
  EXPECT_EQ(codes(findings).count(LintCode::kL009RawConcurrencyPrimitive), 4u);
  EXPECT_EQ(findings[0].line, 1u);
  EXPECT_EQ(findings[1].line, 2u);
  EXPECT_EQ(findings[2].line, 3u);  // line 4 is QUORA_SHARD_SHARED: clean
  EXPECT_EQ(findings[3].line, 6u);
}

TEST(LintChecksL009, ShardSharedAnnotationCoversOneDeclarationOnly) {
  const auto findings = check(
      "QUORA_SHARD_SHARED std::atomic<long> epoch{0};\n"
      "std::atomic<long> next_epoch{0};\n");  // the annotation does not leak
  ASSERT_EQ(codes(findings).count(LintCode::kL009RawConcurrencyPrimitive), 1u);
  EXPECT_EQ(findings[0].line, 2u);
}

// ------------------------------------------------------------ scope map

TEST(LintScope, MapsRepoLayersToChecks) {
  const CheckScope sim = scope_for_path("src/sim/simulator.cpp", false);
  EXPECT_TRUE(sim.macro_args);
  EXPECT_TRUE(sim.entropy);
  EXPECT_FALSE(sim.unordered);
  EXPECT_TRUE(sim.raw_obs);
  EXPECT_FALSE(sim.concurrency);  // the parallel simulator may synchronize

  const CheckScope fault = scope_for_path("src/fault/plan.cpp", false);
  EXPECT_TRUE(fault.entropy);
  EXPECT_TRUE(fault.unordered);
  EXPECT_TRUE(fault.raw_obs);
  EXPECT_TRUE(fault.concurrency);

  // Protocol layers the model checker single-steps get L009 (and the
  // model scope is a deterministic layer, so L003 rides along).
  const CheckScope msg = scope_for_path("src/msg/cluster.cpp", false);
  EXPECT_TRUE(msg.concurrency);
  const CheckScope model = scope_for_path("src/model/explorer.cpp", false);
  EXPECT_TRUE(model.concurrency);
  EXPECT_TRUE(model.entropy);
  const CheckScope quorum = scope_for_path("src/quorum/assign.cpp", false);
  EXPECT_TRUE(quorum.concurrency);

  // The obs layer's own internals are exactly where raw calls must live.
  const CheckScope obs = scope_for_path("src/obs/trace.cpp", false);
  EXPECT_FALSE(obs.entropy);
  EXPECT_TRUE(obs.unordered);
  EXPECT_FALSE(obs.raw_obs);

  const CheckScope tool = scope_for_path("tools/quora_check.cpp", false);
  EXPECT_TRUE(tool.macro_args);
  EXPECT_FALSE(tool.entropy);
  EXPECT_FALSE(tool.unordered);
  EXPECT_FALSE(tool.raw_obs);

  const CheckScope forced = scope_for_path("tools/quora_check.cpp", true);
  EXPECT_TRUE(forced.entropy);
  EXPECT_TRUE(forced.unordered);
  EXPECT_TRUE(forced.raw_obs);
  EXPECT_TRUE(forced.concurrency);
}

// ---------------------------------------------------------- JSON output

TEST(LintJson, EscapesAndOmitsSuppressedUnlessAsked) {
  Finding open;
  open.code = LintCode::kL003ForbiddenEntropy;
  open.path = "src/sim/a.cpp";
  open.line = 3;
  open.column = 5;
  open.message = "uses \"rand\"\n";
  Finding hidden = open;
  hidden.suppressed = true;
  hidden.line = 9;

  std::ostringstream only_open;
  write_findings_json(only_open, {open, hidden}, /*include_all=*/false);
  EXPECT_NE(only_open.str().find("\\\"rand\\\"\\n"), std::string::npos);
  EXPECT_NE(only_open.str().find("\"tag\": \"L003\""), std::string::npos);
  EXPECT_EQ(only_open.str().find("\"suppressed\""), std::string::npos);
  EXPECT_EQ(only_open.str().find("\"line\": 9"), std::string::npos);

  std::ostringstream all;
  write_findings_json(all, {open, hidden}, /*include_all=*/true);
  EXPECT_NE(all.str().find("\"suppressed\": true"), std::string::npos);
  EXPECT_NE(all.str().find("\"line\": 9"), std::string::npos);
}

TEST(LintDedupe, CollapsesTokenAndAstOverlap) {
  Finding a;
  a.code = LintCode::kL003ForbiddenEntropy;
  a.path = "src/sim/a.cpp";
  a.line = 3;
  a.message = "token-engine wording";
  Finding b = a;
  b.message = "ast-engine wording";
  std::vector<Finding> findings{a, b};
  dedupe_findings(&findings);
  EXPECT_EQ(findings.size(), 1u);
}

} // namespace
