// L003: nondeterminism sources forbidden in the deterministic layers
// (src/{sim,msg,core,conn,fault,dyn}). The fixture runner forces scope
// with --all-scopes. Lines tagged `expect-ast: L003` need type/decl
// resolution and are only found by the AST engine (QUORA_LINT=ON).
#include "fixture_support.hpp"

#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

namespace {

rng::Stream gen_;

double bad_cases() {
  std::random_device rd;                                     // expect: L003
  std::mt19937 mt(12345);                                    // expect: L003
  int r = std::rand();                                       // expect: L003
  std::srand(7);                                             // expect: L003
  auto t0 = std::chrono::steady_clock::now();                // expect: L003
  auto t1 = std::chrono::system_clock::now();                // expect: L003
  auto t2 = std::chrono::high_resolution_clock::now();       // expect: L003
  std::time_t wall = std::time(nullptr);                     // expect: L003
  double sum = static_cast<double>(rd() + mt() + r);
  sum += static_cast<double>(wall);
  sum += std::chrono::duration<double>(t0.time_since_epoch()).count();
  sum += std::chrono::duration<double>(t2 - t1).count();
  return sum;
}

double good_cases() {
  // The sanctioned sources: seeded xoshiro streams and simulated time.
  double sum = rng::exponential(gen_, 2.0);
  sum += static_cast<double>(gen_.next_u64() & 0xff);
  if (rng::bernoulli(gen_, 0.5)) sum += 1.0;
  // Plain identifiers named like the forbidden calls are fine.
  double time = sum;
  const double clock = time * 2.0;
  return clock;
}

} // namespace

// The whole-program pass also flags the *call* to the entropic helper.
int main() { return static_cast<int>(bad_cases() + good_cases()) == 0; }  // expect: L003
