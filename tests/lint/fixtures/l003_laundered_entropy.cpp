// L003 (interprocedural): entropy laundered through helper functions.
// Only `wall_seconds` touches the forbidden source directly (the
// per-file check catches that line); the whole-program pass follows the
// call graph and reports every call site whose callee transitively
// reaches the entropy, with a witness chain in the message.
#include "fixture_support.hpp"

#include <ctime>

namespace {

double wall_seconds() {
  return static_cast<double>(std::time(nullptr));  // expect: L003
}

// One hop from the source.
double jitter() { return wall_seconds() * 0.5; }  // expect: L003

// Two hops from the source.
double settle() { return jitter() + 1.0; }  // expect: L003

double pure_helper() { return 2.0; }
double good_cases() { return pure_helper() * 3.0; }

} // namespace

int main() {
  return static_cast<int>(settle() + good_cases()) == 0;  // expect: L003
}
