// L007: shard-confinement violations. A `sim`-domain entry point reaches
// `msg`-domain QUORA_SHARD_LOCAL state through a helper; a member mixes
// LOCAL with SHARED; shard-local lands on a static-storage symbol. The
// `msg` entry point draining its own state and the QUORA_SHARD_SHARED
// global are the sanctioned shapes and must stay clean.
#include "fixture_support.hpp"

#include <vector>

namespace {

QUORA_SHARD_SHARED long g_total_drained = 0;

QUORA_SHARD_LOCAL(sim) long s_cursor = 0;  // expect: L007

struct MsgState {
  QUORA_SHARD_LOCAL(msg) std::vector<int> queue_depths_;

  long drain() {
    long sum = 0;
    for (int d : queue_depths_) sum += d;  // expect: L007
    return sum;
  }
};

struct Confused {
  QUORA_SHARD_LOCAL(sim) QUORA_SHARD_SHARED long hits_ = 0;  // expect: L007
};

class SimShard {
public:
  QUORA_SHARD_ENTRY(sim) long run() {
    g_total_drained += 1;  // declared shared: sanctioned
    return peer_->drain();
  }

  MsgState* peer_ = nullptr;
};

// Same-domain access is the sanctioned shape: no finding.
QUORA_SHARD_ENTRY(msg) long pump(MsgState& st) { return st.drain(); }

} // namespace

int main() {
  MsgState st;
  SimShard shard;
  shard.peer_ = &st;
  return static_cast<int>(shard.run() + pump(st) + s_cursor + Confused{}.hits_);
}
