// Malformed suppression directives are hard errors (exit 2): a typo in
// an allow-comment must never silently stop suppressing.
#include "fixture_support.hpp"

namespace {

unsigned long long attempts = 0;

void cases() {
  // quora-lint: allow(L001)
  attempts += 1;  // missing reason above: malformed
  // quora-lint: allow(L999) unknown code tag
  attempts += 1;
  // quora-lint: allowed(L001) wrong keyword
  attempts += 1;
}

} // namespace

int main() {
  cases();
  return 0;
}
