// L002: side-effectful arguments to the contract macros, which compile
// out in Release builds.
#include "fixture_support.hpp"

#include <set>

namespace {

std::set<int> votes;
rng::Stream gen_;
long total = 0;
long steps = 0;
long limit = 100;

long compute() { return 42; }

void bad_cases() {
  QUORA_ASSERT(++steps < limit, "step budget");             // expect: L002
  QUORA_PRECONDITION(total = compute(), "typo for ==");     // expect: L002
  QUORA_INVARIANT((votes.insert(3), true), "inserts!");     // expect: L002
  QUORA_ASSERT(gen_.next_u64() != 0, "draws a stream");     // expect: L002
}

void good_cases() {
  QUORA_ASSERT(steps + 1 < limit, "pure arithmetic");
  QUORA_PRECONDITION(total == compute(), "comparison, not assignment");
  QUORA_INVARIANT(votes.count(3) <= 1, "const query");
  QUORA_ASSERT(total >= 0 && steps != limit, "operators >=, !=, && are pure");
}

} // namespace

int main() {
  bad_cases();
  good_cases();
  return 0;
}
