// L001 (interprocedural): a call written inside a QUORA_OBS-gated macro
// argument that *looks* pure but reaches a side effect through helpers.
// The per-file check cannot see this — the whole-program pass resolves
// the call graph and reports the macro-argument call site. Calls to
// genuinely pure helpers stay clean.
#include "fixture_support.hpp"

namespace {

quora::obs::TraceRecorder* trace_ = nullptr;
quora::obs::Gauge obs_depth_;
unsigned long long g_polls = 0;

unsigned long long bump_polls() {
  g_polls += 1;
  return g_polls;
}

// Two hops from the macro argument to the mutation.
unsigned long long sampled_depth() { return bump_polls() % 16; }

// Pure read of the same state: sanctioned inside the macros.
long long peek_depth() { return static_cast<long long>(g_polls % 16); }

void bad_cases() {
  QUORA_TRACE(trace_, 1, 2, sampled_depth());                          // expect: L001
  QUORA_METRIC_SET(obs_depth_, static_cast<long long>(sampled_depth())); // expect: L001
}

void good_cases() {
  QUORA_TRACE(trace_, 1, 2, g_polls);
  QUORA_METRIC_SET(obs_depth_, peek_depth());
}

} // namespace

int main() {
  bad_cases();
  good_cases();
  return static_cast<int>(g_polls == 0);
}
