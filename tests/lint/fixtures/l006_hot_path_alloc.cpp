// L006: heap allocation reachable from a QUORA_HOT_PATH root. `step` is
// the annotated hot path; its helpers allocate one layer down (container
// growth, operator new/delete, std::to_string). `warm_up` is
// QUORA_ALLOC_OK: its own pre-reserve allocation is sanctioned — and it
// is not reachable from the hot path anyway.
#include "fixture_support.hpp"

#include <string>
#include <vector>

namespace {

class Engine {
public:
  QUORA_HOT_PATH void step() {
    advance();
    record_label();
  }

  QUORA_ALLOC_OK void warm_up() {
    slots_.reserve(64);  // sanctioned: owner is QUORA_ALLOC_OK
  }

private:
  void advance() {
    slots_.push_back(1);        // expect: L006
    int* scratch = new int[4];  // expect: L006
    delete[] scratch;           // expect: L006
  }

  void record_label() {
    label_ = std::to_string(42);  // expect: L006
  }

  std::vector<int> slots_;
  std::string label_;
};

} // namespace

int main() {
  Engine e;
  e.warm_up();
  e.step();
  return 0;
}
