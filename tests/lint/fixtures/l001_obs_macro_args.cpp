// L001: side-effectful arguments to the QUORA_OBS-gated macros. Every
// line carrying an expect marker must be reported; untagged macro uses
// are the sanctioned spellings and must stay clean.
#include "fixture_support.hpp"

namespace {

quora::obs::TraceRecorder* trace_ = nullptr;
quora::obs::Counter obs_grants_;
quora::obs::Histogram obs_latency_;
quora::obs::Gauge obs_depth_;
rng::Stream gen_;

unsigned long long attempts = 0;
unsigned long long obs_window_start = 0;
double now_ = 0.0;
long long depth = 0;

void bad_cases() {
  QUORA_TRACE(trace_, 1, 2, attempts++);                 // expect: L001
  QUORA_TRACE(trace_, 1, 2, ++attempts);                 // expect: L001
  QUORA_METRIC_ADD(obs_grants_, attempts += 1);          // expect: L001
  QUORA_METRIC_RECORD(obs_latency_, gen_.next_double()); // expect: L001
  QUORA_METRIC_RECORD(obs_latency_, rng::exponential(gen_, 2.0)); // expect: L001
  QUORA_METRIC_SET(obs_depth_, depth = 3);               // expect: L001
  QUORA_OBS_ONLY(attempts = 7;)                          // expect: L001
}

void good_cases() {
  QUORA_TRACE(trace_, 1, 2, attempts);
  QUORA_TRACE(trace_, 1, 2, attempts + 1);
  QUORA_METRIC_ADD(obs_grants_, 1);
  QUORA_METRIC_RECORD(obs_latency_, now_ - 0.5);
  QUORA_METRIC_SET(obs_depth_, depth);
  // Comparisons and compound conditions are not mutations.
  QUORA_TRACE(trace_, 1, 2, attempts == 3 ? 1u : 0u);
  // QUORA_OBS_ONLY may mutate obs-only state (obs_* naming convention).
  QUORA_OBS_ONLY(obs_window_start = attempts;)
}

} // namespace

int main() {
  bad_cases();
  good_cases();
  return 0;
}
