// Baseline acceptance: the findings below are listed in
// baseline_accepted.baseline, so linting with --baseline exits 0 while
// linting without it exits 1.
#include "fixture_support.hpp"

namespace {

quora::obs::Counter obs_grants_;
unsigned long long attempts = 0;

void legacy_cases() {
  QUORA_METRIC_ADD(obs_grants_, attempts++);  // expect: L001
  obs_grants_.add(2);                         // expect: L005
}

} // namespace

int main() {
  legacy_cases();
  return 0;
}
