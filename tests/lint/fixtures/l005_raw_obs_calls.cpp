// L005: raw TraceRecorder / metric-handle calls that bypass the
// QUORA_OBS gating macros — they survive QUORA_OBS=OFF builds, so the
// "observability is free when off" guarantee silently breaks. The token
// engine matches the repo naming conventions (*trace* recorders, obs_*
// handles); the AST engine resolves the real types (expect-ast).
#include "fixture_support.hpp"

namespace {

quora::obs::TraceRecorder* trace_ = nullptr;
quora::obs::TraceRecorder* recorder = nullptr;  // name defeats the convention
quora::obs::Counter obs_grants_;
quora::obs::Histogram obs_latency_;
quora::obs::Gauge obs_depth_;
double now_ = 0.0;

void bad_cases() {
  trace_->record(1, 2, 3);                  // expect: L005
  trace_->record_at(now_, 1, 2, 3);         // expect: L005
  obs_grants_.add(1);                       // expect: L005
  obs_latency_.record(now_);                // expect: L005
  obs_depth_.set(4);                        // expect: L005
  recorder->record(1, 2, 3);                // expect-ast: L005
}

void good_cases() {
  QUORA_TRACE(trace_, 1, 2, 3);
  QUORA_METRIC_ADD(obs_grants_, 1);
  QUORA_METRIC_RECORD(obs_latency_, now_);
  QUORA_METRIC_SET(obs_depth_, 4);
  // Wiring (clock injection, registration) is cold-path and sanctioned.
  trace_->set_clock(&now_);
}

} // namespace

int main() {
  bad_cases();
  good_cases();
  return 0;
}
