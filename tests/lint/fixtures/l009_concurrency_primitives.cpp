// L009: raw concurrency primitives in the protocol layers. The simulator
// and the model checker single-step src/msg, src/quorum, src/fault, and
// src/model deterministically; a raw mutex, atomic, or thread_local slot
// introduces scheduling neither engine can see or explore. State that
// really is shared across shards must say so with QUORA_SHARD_SHARED —
// the declared shapes below are the sanctioned ones. Uses of an already
// declared handle are not re-flagged: one finding per primitive mention.
#include "fixture_support.hpp"

#include <atomic>
#include <condition_variable>
#include <mutex>

namespace {

std::mutex g_table_lock;              // expect: L009
std::atomic<int> g_inflight{0};       // expect: L009
std::condition_variable g_wakeup;     // expect: L009
thread_local unsigned g_scratch = 0;  // expect: L009

QUORA_SHARD_SHARED std::atomic<long> g_epoch{0};  // declared shared: clean

class Coordinator {
public:
  int grant() {
    std::atomic_int hits{0};  // expect: L009
    hits.fetch_add(1);
    g_scratch += 1;          // touching the slot: flagged at the decl only
    g_wakeup.notify_one();   // ditto for the condition variable
    g_inflight.fetch_sub(1);
    return hits.load() + static_cast<int>(g_epoch.load());
  }

private:
  QUORA_SHARD_SHARED std::atomic<unsigned> version_{1};  // member: clean
};

} // namespace

int main() {
  Coordinator c;
  std::lock_guard<std::mutex> hold(g_table_lock);  // expect: L009
  return c.grant() == 0 ? 1 : 0;
}
