// L008: mutable globals/statics touched from annotated paths must be
// const or explicitly QUORA_SHARD_SHARED. `bump` is reached from the
// QUORA_HOT_PATH root and touches an undeclared mutable global; the
// const table and the declared-shared epoch are the sanctioned shapes.
// References outside the annotated reachability (main) are not flagged.
#include "fixture_support.hpp"

namespace {

long g_tick_count = 0;  // mutable, undeclared — flagged when reached

const double g_rate_limit = 8.0;  // const: sanctioned

QUORA_SHARD_SHARED long g_epoch = 0;  // declared shared: sanctioned

class Pump {
public:
  QUORA_HOT_PATH void spin() { bump(); }

private:
  void bump() {
    g_tick_count += 1;  // expect: L008
    if (g_rate_limit > 0.0) g_epoch += 1;
  }
};

} // namespace

int main() {
  Pump p;
  p.spin();
  g_tick_count += 1;  // outside the annotated reachability: clean
  return static_cast<int>(g_tick_count == 0);
}
