// L004: iterating unordered containers in transcript-feeding code.
// Iteration order is unspecified, so anything it feeds into a transcript
// diverges between runs/platforms. Lookups are fine; iteration is not.
// The alias case needs type resolution: AST engine only (expect-ast).
#include "fixture_support.hpp"

#include <numeric>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace {

std::unordered_map<int, long> table;
std::unordered_set<int> members;
using Alias = std::unordered_map<int, long>;
Alias aliased;

long bad_cases() {
  long sum = 0;
  for (const auto& [site, votes] : table) sum += votes;        // expect: L004
  for (int m : members) sum += m;                              // expect: L004
  const long acc = std::accumulate(table.begin(), table.end(), 0L,  // expect: L004
                                   [](long a, const auto& kv) { return a + kv.second; });
  for (const auto& [site, votes] : aliased) sum += votes;      // expect-ast: L004
  return sum + acc;
}

long good_cases() {
  // Point lookups and size queries do not depend on iteration order.
  long sum = static_cast<long>(table.size() + members.size());
  const auto it = table.find(3);
  if (it != table.end()) sum += it->second;
  if (members.count(5) != 0) sum += 5;
  // Ordered containers iterate deterministically.
  std::vector<long> ordered{1, 2, 3};
  for (const long v : ordered) sum += v;
  sum += std::accumulate(ordered.begin(), ordered.end(), 0L);
  return sum;
}

} // namespace

int main() { return bad_cases() + good_cases() > 0 ? 0 : 1; }
