#pragma once

// Mini mirror of the repo's obs layer, contract macros, and rng streams —
// just enough for the lint fixtures to compile standalone when the AST
// engine (QUORA_LINT=ON) parses them. The token engine never reads this
// file: it skips preprocessor lines, so only the fixtures' macro *uses*
// are analyzed, exactly as in the real tree.

#include <cstdint>

namespace quora::obs {

class TraceRecorder {
public:
  void record(int kind, unsigned site, unsigned long long request,
              unsigned long long a = 0, unsigned char x = 0);
  void record_at(double t, int kind, unsigned site,
                 unsigned long long request);
  void set_clock(const double* now);
};

class Counter {
public:
  void add(unsigned long long n = 1) const;
};

class Histogram {
public:
  void record(double value) const;
};

class Gauge {
public:
  void set(long long value) const;
};

} // namespace quora::obs

namespace rng {

struct Stream {
  unsigned long long next_u64();
  double next_double();
};

double exponential(Stream& s, double mu);
bool bernoulli(Stream& s, double p);

} // namespace rng

#define QUORA_TRACE(rec, ...) \
  do {                        \
    if ((rec) != nullptr) (rec)->record(__VA_ARGS__); \
  } while (0)
#define QUORA_METRIC_ADD(handle, n) (handle).add(n)
#define QUORA_METRIC_RECORD(handle, v) (handle).record(v)
#define QUORA_METRIC_SET(handle, v) (handle).set(v)
#define QUORA_OBS_ONLY(...) __VA_ARGS__

#define QUORA_ASSERT(expr, msg) ((void)(expr))
#define QUORA_INVARIANT(expr, msg) ((void)(expr))
#define QUORA_PRECONDITION(expr, msg) ((void)(expr))

// Analysis annotations — mirror of src/core/analysis_annotations.hpp so
// the whole-program fixtures compile standalone. The token engine keys
// on the macro *names*; the AST engine reads the [[clang::annotate]]
// payloads.
#if defined(__clang__)
#define QUORA_FIXTURE_ANNOTATE(text) [[clang::annotate(text)]]
#else
#define QUORA_FIXTURE_ANNOTATE(text)
#endif
#define QUORA_HOT_PATH QUORA_FIXTURE_ANNOTATE("quora::hot_path")
#define QUORA_ANALYSIS_BOUNDARY QUORA_FIXTURE_ANNOTATE("quora::analysis_boundary")
#define QUORA_ALLOC_OK QUORA_FIXTURE_ANNOTATE("quora::alloc_ok")
#define QUORA_SHARD_ENTRY(domain) QUORA_FIXTURE_ANNOTATE("quora::shard_entry:" #domain)
#define QUORA_SHARD_LOCAL(domain) QUORA_FIXTURE_ANNOTATE("quora::shard_local:" #domain)
#define QUORA_SHARD_SHARED QUORA_FIXTURE_ANNOTATE("quora::shard_shared")
