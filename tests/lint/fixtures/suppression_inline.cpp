// Inline suppression directives: every finding here carries an
// allow-comment, so the file must lint clean (exit 0) while
// --show-suppressed still reports the findings as suppressed.
#include "fixture_support.hpp"

#include <unordered_map>

namespace {

quora::obs::TraceRecorder* trace_ = nullptr;
quora::obs::Counter obs_grants_;
std::unordered_map<int, long> table;
unsigned long long attempts = 0;

long covered_cases() {
  // Same-line form.
  QUORA_TRACE(trace_, 1, 2, attempts++);  // quora-lint: allow(L001) fixture exercises same-line allow
  // Previous-line form covers the next source line.
  // quora-lint: allow(L005) fixture exercises previous-line allow
  obs_grants_.add(1);
  // One directive may allow several codes at once.
  long sum = 0;
  // quora-lint: allow(L004,L005) multi-code directive fixture
  for (const auto& [site, votes] : table) sum += votes;
  return sum;
}

} // namespace

int main() { return covered_cases() >= 0 ? 0 : 1; }
