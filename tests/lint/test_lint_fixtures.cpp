// End-to-end tests for the quora_lint binary: each fixture under
// tests/lint/fixtures/ marks its expected findings with trailing
//   `// expect: L00x`      — found by both engines
//   `// expect-ast: L00x`  — needs type resolution; AST engine only
// markers, and this runner asserts the binary reports exactly that set
// (as (line, tag) pairs), with the documented exit codes:
//   0 clean / everything suppressed-or-baselined
//   1 unsuppressed findings
//   2 usage, I/O, or malformed suppression directives
//
// The token-engine cases run in every build. The AST cases run only when
// the binary was built with -DQUORA_LINT=ON (QUORA_LINT_HAS_AST below);
// otherwise they GTEST_SKIP, so `ctest -L lint` stays green without LLVM.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#ifndef QUORA_LINT_BIN
#error "QUORA_LINT_BIN must point at the quora_lint executable"
#endif
#ifndef QUORA_LINT_FIXTURE_DIR
#error "QUORA_LINT_FIXTURE_DIR must point at tests/lint/fixtures"
#endif
#ifndef QUORA_REPO_ROOT
#error "QUORA_REPO_ROOT must point at the repository root"
#endif
#ifndef QUORA_LINT_HAS_AST
#define QUORA_LINT_HAS_AST 0
#endif

namespace {

struct LintRun {
  int exit_code = -1;
  std::string output;  // stdout only; stderr goes to /dev/null
};

LintRun run_lint(const std::string& args) {
  const std::string cmd =
      std::string(QUORA_LINT_BIN) + " --quiet " + args + " 2>/dev/null";
  LintRun run;
  FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) return run;
  char buf[4096];
  std::size_t n = 0;
  while ((n = fread(buf, 1, sizeof(buf), pipe)) > 0) run.output.append(buf, n);
  const int status = pclose(pipe);
  run.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return run;
}

std::string fixture(const std::string& name) {
  return std::string(QUORA_LINT_FIXTURE_DIR) + "/" + name;
}

using LineTag = std::pair<unsigned, std::string>;  // (line, "L00x")

/// Reads the `// expect:` / `// expect-ast:` markers out of a fixture.
void read_expectations(const std::string& name, std::set<LineTag>* token,
                       std::set<LineTag>* ast_extra) {
  std::ifstream in(fixture(name));
  ASSERT_TRUE(in) << "missing fixture " << name;
  std::string line;
  unsigned line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const auto grab = [&](const char* tag_marker, std::set<LineTag>* out) {
      const std::size_t pos = line.find(tag_marker);
      if (pos == std::string::npos) return;
      const std::string tag =
          line.substr(pos + std::string(tag_marker).size(), 4);
      out->insert({line_no, tag});
    };
    grab("expect-ast: ", ast_extra);
    if (line.find("expect-ast: ") == std::string::npos) {
      grab("expect: ", token);
    }
  }
}

struct JsonFinding {
  std::string tag;
  std::string path;
  unsigned line = 0;
  bool suppressed = false;
  bool baselined = false;
};

/// Pulls the fields this suite asserts on out of the findings array. The
/// writer emits one object per line, which keeps this honest without a
/// JSON library.
std::vector<JsonFinding> parse_findings(const std::string& json) {
  std::vector<JsonFinding> out;
  std::istringstream in(json);
  std::string line;
  const auto field = [&line](const std::string& key) -> std::string {
    const std::string probe = "\"" + key + "\": ";
    const std::size_t pos = line.find(probe);
    if (pos == std::string::npos) return "";
    std::size_t start = pos + probe.size();
    std::size_t end = start;
    if (line[start] == '"') {
      ++start;
      end = line.find('"', start);
    } else {
      end = line.find_first_of(",}", start);
    }
    return line.substr(start, end - start);
  };
  while (std::getline(in, line)) {
    if (line.find("\"tag\"") == std::string::npos) continue;
    JsonFinding f;
    f.tag = field("tag");
    f.path = field("path");
    f.line = static_cast<unsigned>(std::strtoul(field("line").c_str(), nullptr, 10));
    f.suppressed = field("suppressed") == "true";
    f.baselined = field("baselined") == "true";
    out.push_back(std::move(f));
  }
  return out;
}

std::set<LineTag> line_tags(const std::vector<JsonFinding>& findings) {
  std::set<LineTag> out;
  for (const JsonFinding& f : findings) out.insert({f.line, f.tag});
  return out;
}

/// Runs one per-check fixture through an engine and compares the reported
/// (line, tag) set against the fixture's markers.
void check_fixture(const std::string& name, const std::string& engine,
                   const std::set<LineTag>& expected) {
  std::string args = "--engine=" + engine + " --all-scopes --json --root " +
                     std::string(QUORA_LINT_FIXTURE_DIR) + " " + fixture(name);
#if QUORA_LINT_HAS_AST
  if (engine == "ast") {
    args += " --compdb " + std::string(QUORA_LINT_COMPDB_DIR);
  }
#endif
  const LintRun run = run_lint(args);
  EXPECT_EQ(run.exit_code, 1) << name << ": " << run.output;
  const auto findings = parse_findings(run.output);
  EXPECT_EQ(line_tags(findings), expected) << name << ": " << run.output;
  for (const JsonFinding& f : findings) {
    EXPECT_EQ(f.path, name) << "paths must be --root-relative";
  }
}

class LintFixture : public ::testing::TestWithParam<const char*> {};

TEST_P(LintFixture, TokenEngineReportsExactlyTheMarkedLines) {
  std::set<LineTag> token, ast_extra;
  read_expectations(GetParam(), &token, &ast_extra);
  ASSERT_FALSE(token.empty()) << "fixture has no expect markers";
  check_fixture(GetParam(), "token", token);
}

TEST_P(LintFixture, AstEngineAddsTypeResolvedFindings) {
#if QUORA_LINT_HAS_AST
  std::set<LineTag> expected, ast_extra;
  read_expectations(GetParam(), &expected, &ast_extra);
  expected.insert(ast_extra.begin(), ast_extra.end());
  check_fixture(GetParam(), "ast", expected);
#else
  GTEST_SKIP() << "built without -DQUORA_LINT=ON; AST engine unavailable";
#endif
}

INSTANTIATE_TEST_SUITE_P(AllChecks, LintFixture,
                         ::testing::Values("l001_obs_macro_args.cpp",
                                           "l001_interprocedural.cpp",
                                           "l002_contract_args.cpp",
                                           "l003_entropy_sources.cpp",
                                           "l003_laundered_entropy.cpp",
                                           "l004_unordered_iteration.cpp",
                                           "l005_raw_obs_calls.cpp",
                                           "l006_hot_path_alloc.cpp",
                                           "l007_shard_confinement.cpp",
                                           "l008_global_state.cpp",
                                           "l009_concurrency_primitives.cpp"),
                         [](const auto& param_info) {
                           // Full fixture name, gtest-sanitized: two
                           // fixtures may share an L-code prefix.
                           std::string name;
                           for (const char c : std::string(param_info.param)) {
                             if ((c >= 'a' && c <= 'z') ||
                                 (c >= 'A' && c <= 'Z') ||
                                 (c >= '0' && c <= '9')) {
                               name += c;
                             }
                           }
                           return name.substr(0, name.size() - 3);  // "cpp"
                         });

TEST(LintSuppression, AllowCommentsSilenceFindingsAndExitZero) {
  const std::string base = "--engine=token --all-scopes --json --root " +
                           std::string(QUORA_LINT_FIXTURE_DIR) + " " +
                           fixture("suppression_inline.cpp");
  const LintRun clean = run_lint(base);
  EXPECT_EQ(clean.exit_code, 0) << clean.output;
  EXPECT_TRUE(parse_findings(clean.output).empty()) << clean.output;

  // --show-suppressed surfaces them, still exit 0.
  const LintRun shown = run_lint(base + " --show-suppressed");
  EXPECT_EQ(shown.exit_code, 0) << shown.output;
  const auto findings = parse_findings(shown.output);
  ASSERT_EQ(findings.size(), 3u) << shown.output;
  for (const JsonFinding& f : findings) EXPECT_TRUE(f.suppressed);
}

TEST(LintSuppression, MalformedDirectivesAreHardErrors) {
  const LintRun run = run_lint("--engine=token --all-scopes --root " +
                               std::string(QUORA_LINT_FIXTURE_DIR) + " " +
                               fixture("suppression_malformed.cpp"));
  EXPECT_EQ(run.exit_code, 2) << run.output;
}

TEST(LintBaseline, BaselinedFindingsPassOnlyWithTheBaseline) {
  const std::string base = "--engine=token --all-scopes --json --root " +
                           std::string(QUORA_LINT_FIXTURE_DIR) + " " +
                           fixture("baseline_accepted.cpp");
  const LintRun without = run_lint(base);
  EXPECT_EQ(without.exit_code, 1) << without.output;
  EXPECT_EQ(parse_findings(without.output).size(), 2u) << without.output;

  const std::string with_baseline =
      base + " --baseline " + fixture("baseline_accepted.baseline");
  const LintRun with = run_lint(with_baseline);
  EXPECT_EQ(with.exit_code, 0) << with.output;
  EXPECT_TRUE(parse_findings(with.output).empty()) << with.output;

  const LintRun shown = run_lint(with_baseline + " --show-suppressed");
  EXPECT_EQ(shown.exit_code, 0);
  const auto findings = parse_findings(shown.output);
  ASSERT_EQ(findings.size(), 2u) << shown.output;
  for (const JsonFinding& f : findings) EXPECT_TRUE(f.baselined);
}

TEST(LintBaseline, WriteBaselineRoundTrips) {
  const std::string out_path =
      ::testing::TempDir() + "/quora_lint_roundtrip.baseline";
  const std::string target = " --all-scopes --root " +
                             std::string(QUORA_LINT_FIXTURE_DIR) + " " +
                             fixture("baseline_accepted.cpp");
  const LintRun wrote = run_lint("--engine=token --write-baseline " + out_path +
                                 target);
  EXPECT_EQ(wrote.exit_code, 0) << wrote.output;

  std::ifstream in(out_path);
  ASSERT_TRUE(in);
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_NE(buf.str().find("L001\tbaseline_accepted.cpp\t"), std::string::npos)
      << buf.str();
  EXPECT_NE(buf.str().find("L005\tbaseline_accepted.cpp\t"), std::string::npos)
      << buf.str();

  const LintRun replay =
      run_lint("--engine=token --baseline " + out_path + target);
  EXPECT_EQ(replay.exit_code, 0) << replay.output;
  std::remove(out_path.c_str());
}

TEST(LintCli, ListChecksNamesTheWholeTaxonomy) {
  const LintRun run = run_lint("--list-checks");
  EXPECT_EQ(run.exit_code, 0);
  for (const char* tag : {"L001", "L002", "L003", "L004", "L005", "L006",
                          "L007", "L008", "L009"}) {
    EXPECT_NE(run.output.find(tag), std::string::npos) << run.output;
  }
}

TEST(LintCli, UnknownFlagsAndMissingPathsAreUsageErrors) {
  EXPECT_EQ(run_lint("--no-such-flag").exit_code, 2);
  EXPECT_EQ(run_lint("--engine=token --root " +
                     std::string(QUORA_LINT_FIXTURE_DIR) +
                     " does_not_exist.cpp")
                .exit_code,
            2);
}

// The acceptance gate: the repo's own sources must lint clean. This is
// the same sweep CI's lint-semantic job runs (there with the AST engine
// layered on top).
TEST(LintSweep, RepoSourcesAreCleanUnderTheTokenEngine) {
  const LintRun run =
      run_lint("--engine=token --root " + std::string(QUORA_REPO_ROOT));
  EXPECT_EQ(run.exit_code, 0) << run.output;
}

} // namespace
