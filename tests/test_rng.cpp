// Tests for the rng substrate: generator determinism, stream disjointness,
// distribution correctness.

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <numeric>
#include <vector>

#include "rng/alias_table.hpp"
#include "rng/distributions.hpp"
#include "rng/splitmix64.hpp"
#include "rng/xoshiro256ss.hpp"

namespace quora::rng {
namespace {

TEST(SplitMix64, KnownSequenceIsDeterministic) {
  SplitMix64 a(42);
  SplitMix64 b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(SplitMix64, MixSeedSeparatesStreams) {
  EXPECT_NE(mix_seed(7, 0), mix_seed(7, 1));
  EXPECT_NE(mix_seed(7, 0), mix_seed(8, 0));
  EXPECT_EQ(mix_seed(7, 3), mix_seed(7, 3));
}

TEST(Xoshiro256ss, Deterministic) {
  Xoshiro256ss a(123);
  Xoshiro256ss b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro256ss, SeedZeroStillWorks) {
  Xoshiro256ss g(0);
  // SplitMix64 expansion guarantees a non-degenerate state even for seed 0.
  std::uint64_t x = 0;
  for (int i = 0; i < 16; ++i) x |= g();
  EXPECT_NE(x, 0u);
}

TEST(Xoshiro256ss, JumpDecorrelatesStreams) {
  Xoshiro256ss base(99);
  Xoshiro256ss jumped(99);
  jumped.jump();
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (base() == jumped()) ++equal;
  }
  EXPECT_LE(equal, 1);
}

TEST(Xoshiro256ss, StreamConstructorMatchesManualJumps) {
  Xoshiro256ss manual(5);
  manual.jump();
  manual.jump();
  Xoshiro256ss stream(5, 2);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(manual(), stream());
}

TEST(Xoshiro256ss, NextDoubleInHalfOpenUnitInterval) {
  Xoshiro256ss g(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = g.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Xoshiro256ss, NextDoubleOpenZeroNeverReturnsZero) {
  Xoshiro256ss g(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = g.next_double_open_zero();
    EXPECT_GT(x, 0.0);
    EXPECT_LE(x, 1.0);
  }
}

TEST(Xoshiro256ss, MeanOfUniformsIsNearHalf) {
  Xoshiro256ss g(2024);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += g.next_double();
  EXPECT_NEAR(sum / n, 0.5, 0.005);
}

TEST(Distributions, ExponentialHasRequestedMean) {
  Xoshiro256ss g(11);
  const double mean = 128.0;
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += exponential(g, mean);
  EXPECT_NEAR(sum / n, mean, mean * 0.02);
}

TEST(Distributions, ExponentialIsNonNegative) {
  Xoshiro256ss g(12);
  for (int i = 0; i < 10000; ++i) EXPECT_GE(exponential(g, 0.01), 0.0);
}

TEST(Distributions, ExponentialMemorylessTailRatio) {
  // P(X > 2m) / P(X > m) should equal P(X > m) for an exponential.
  Xoshiro256ss g(13);
  const double mean = 1.0;
  int beyond_m = 0;
  int beyond_2m = 0;
  const int n = 400000;
  for (int i = 0; i < n; ++i) {
    const double x = exponential(g, mean);
    if (x > mean) ++beyond_m;
    if (x > 2 * mean) ++beyond_2m;
  }
  const double p_m = static_cast<double>(beyond_m) / n;
  const double p_2m = static_cast<double>(beyond_2m) / n;
  EXPECT_NEAR(p_2m / p_m, p_m, 0.01);
}

TEST(Distributions, UniformIndexCoversRangeUniformly) {
  Xoshiro256ss g(21);
  constexpr std::uint64_t bound = 7;
  std::array<int, bound> counts{};
  const int n = 140000;
  for (int i = 0; i < n; ++i) ++counts[uniform_index(g, bound)];
  for (const int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / n, 1.0 / bound, 0.01);
  }
}

TEST(Distributions, UniformIndexBoundOne) {
  Xoshiro256ss g(22);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(uniform_index(g, 1), 0u);
}

TEST(Distributions, BernoulliMatchesProbability) {
  Xoshiro256ss g(23);
  const double p = 0.25;
  int hits = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    if (bernoulli(g, p)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, p, 0.005);
}

TEST(Distributions, BernoulliExtremes) {
  Xoshiro256ss g(24);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(bernoulli(g, 0.0));
    EXPECT_TRUE(bernoulli(g, 1.0));
  }
}

TEST(Distributions, WeightedIndexLinearRespectsWeights) {
  Xoshiro256ss g(25);
  const std::vector<double> w{1.0, 3.0, 6.0};
  std::array<int, 3> counts{};
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[weighted_index_linear(g, w)];
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.01);
  EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.6, 0.01);
}

TEST(AliasTable, RejectsBadInput) {
  EXPECT_THROW(AliasTable(std::vector<double>{}), std::invalid_argument);
  EXPECT_THROW(AliasTable(std::vector<double>{0.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(AliasTable(std::vector<double>{1.0, -1.0}), std::invalid_argument);
}

TEST(AliasTable, NormalizesProbabilities) {
  const AliasTable t(std::vector<double>{2.0, 6.0});
  EXPECT_NEAR(t.probability(0), 0.25, 1e-12);
  EXPECT_NEAR(t.probability(1), 0.75, 1e-12);
}

TEST(AliasTable, SamplesMatchWeights) {
  Xoshiro256ss g(31);
  const std::vector<double> w{5.0, 1.0, 2.0, 2.0};
  const AliasTable t(w);
  std::array<int, 4> counts{};
  const int n = 200000;
  for (int i = 0; i < n; ++i) ++counts[t.sample(g)];
  const double total = std::accumulate(w.begin(), w.end(), 0.0);
  for (std::size_t i = 0; i < w.size(); ++i) {
    EXPECT_NEAR(counts[i] / static_cast<double>(n), w[i] / total, 0.01);
  }
}

TEST(AliasTable, SingleEntryAlwaysSamplesZero) {
  Xoshiro256ss g(32);
  const AliasTable t(std::vector<double>{42.0});
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(t.sample(g), 0u);
}

TEST(AliasTable, ZeroWeightEntryNeverSampled) {
  Xoshiro256ss g(33);
  const AliasTable t(std::vector<double>{1.0, 0.0, 1.0});
  for (int i = 0; i < 50000; ++i) EXPECT_NE(t.sample(g), 1u);
}

TEST(AliasTable, UniformWeightsStayUniformLargeN) {
  Xoshiro256ss g(34);
  const std::vector<double> w(101, 1.0);  // the paper's site count
  const AliasTable t(w);
  std::vector<int> counts(101, 0);
  const int n = 505000;
  for (int i = 0; i < n; ++i) ++counts[t.sample(g)];
  for (const int c : counts) {
    EXPECT_NEAR(c / static_cast<double>(n), 1.0 / 101.0, 0.002);
  }
}

} // namespace
} // namespace quora::rng
