// Tests for the topology text format: parsing, validation with line
// numbers, builder directives, and save/load round-trips.

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "io/topology_io.hpp"
#include "net/builders.hpp"

namespace quora::io {
namespace {

net::Topology parse(const std::string& text) {
  std::istringstream in(text);
  return load_topology(in);
}

TEST(TopologyIo, MinimalExplicitFile) {
  const net::Topology topo = parse(
      "sites 3\n"
      "link 0 1\n"
      "link 1 2\n");
  EXPECT_EQ(topo.site_count(), 3u);
  EXPECT_EQ(topo.link_count(), 2u);
  EXPECT_EQ(topo.total_votes(), 3u);
}

TEST(TopologyIo, CommentsAndBlanksIgnored) {
  const net::Topology topo = parse(
      "# header comment\n"
      "\n"
      "sites 4   # trailing comment\n"
      "  \n"
      "ring # make it a cycle\n");
  EXPECT_EQ(topo.link_count(), 4u);
}

TEST(TopologyIo, VotesAndDefaults) {
  const net::Topology topo = parse(
      "sites 4\n"
      "vote default 2\n"
      "vote 1 5\n"
      "vote 3 0\n"
      "link 0 1\n");
  EXPECT_EQ(topo.votes(0), 2u);
  EXPECT_EQ(topo.votes(1), 5u);
  EXPECT_EQ(topo.votes(3), 0u);
  EXPECT_EQ(topo.total_votes(), 9u);
}

TEST(TopologyIo, BuilderDirectivesMatchBuilders) {
  const net::Topology parsed = parse(
      "sites 11\n"
      "ring\n"
      "chords 3\n");
  const net::Topology built = net::make_ring_with_chords(11, 3);
  ASSERT_EQ(parsed.link_count(), built.link_count());
  // The parser canonicalizes endpoints (a < b); compare as sets.
  for (net::LinkId l = 0; l < parsed.link_count(); ++l) {
    const net::Link p = parsed.link(l);
    const net::Link b = built.link(l);
    EXPECT_EQ(std::minmax(p.a, p.b), std::minmax(b.a, b.b)) << "link " << l;
  }
}

TEST(TopologyIo, CompleteDirective) {
  const net::Topology topo = parse("sites 5\ncomplete\n");
  EXPECT_EQ(topo.link_count(), 10u);
}

TEST(TopologyIo, BuildersSkipExistingLinks) {
  const net::Topology topo = parse(
      "sites 5\n"
      "link 0 1\n"
      "ring\n");  // ring re-adds 0-1; must be skipped, not an error
  EXPECT_EQ(topo.link_count(), 5u);
}

TEST(TopologyIo, NameDirective) {
  const net::Topology topo = parse("sites 3\nname prod-cluster\nring\n");
  EXPECT_EQ(topo.name(), "prod-cluster");
}

TEST(TopologyIo, ErrorsCarryLineNumbers) {
  const auto expect_error_at = [](const std::string& text, std::size_t line) {
    try {
      parse(text);
      FAIL() << "expected ParseError";
    } catch (const ParseError& e) {
      EXPECT_EQ(e.line(), line) << e.what();
    }
  };
  expect_error_at("link 0 1\n", 1);                       // before sites
  expect_error_at("sites 3\nsites 4\n", 2);               // duplicate sites
  expect_error_at("sites 3\nlink 0 3\n", 2);              // site out of range
  expect_error_at("sites 3\nlink 1 1\n", 2);              // self loop
  expect_error_at("sites 3\nlink 0 1\nlink 1 0\n", 3);    // duplicate link
  expect_error_at("sites 3\nfrobnicate\n", 2);            // unknown directive
  expect_error_at("sites 3\nlink 0 1 9\n", 2);            // trailing junk
  expect_error_at("sites 3\nvote 0\n", 2);                // missing vote count
  expect_error_at("sites 0\n", 1);                        // zero sites
  expect_error_at("sites 4\nchords 99\n", 2);             // too many chords
  expect_error_at("", 0);                                 // empty file
}

TEST(TopologyIo, SaveLoadRoundTrip) {
  const net::Topology original("rt", 6,
                               {net::Link{0, 1}, net::Link{2, 3}, net::Link{4, 5},
                                net::Link{0, 5}},
                               std::vector<net::Vote>{1, 2, 1, 0, 3, 1});
  std::ostringstream out;
  save_topology(out, original);
  std::istringstream in(out.str());
  const net::Topology reloaded = load_topology(in);

  EXPECT_EQ(reloaded.name(), original.name());
  EXPECT_EQ(reloaded.site_count(), original.site_count());
  ASSERT_EQ(reloaded.link_count(), original.link_count());
  for (net::LinkId l = 0; l < original.link_count(); ++l) {
    EXPECT_EQ(reloaded.link(l), original.link(l));
  }
  for (net::SiteId s = 0; s < original.site_count(); ++s) {
    EXPECT_EQ(reloaded.votes(s), original.votes(s));
  }
}

TEST(TopologyIo, RoundTripPaperTopology) {
  const net::Topology original = net::make_ring_with_chords(101, 16);
  std::ostringstream out;
  save_topology(out, original);
  std::istringstream in(out.str());
  const net::Topology reloaded = load_topology(in);
  EXPECT_EQ(reloaded.link_count(), 117u);
  EXPECT_EQ(reloaded.total_votes(), 101u);
}

TEST(TopologyIo, MissingFileThrows) {
  EXPECT_THROW(load_topology_file("/nonexistent/quora.topo"), std::runtime_error);
}

TEST(SystemSpecIo, ReliabilityDirectives) {
  std::istringstream in(
      "sites 4\n"
      "ring\n"
      "site_rel default 0.9\n"
      "site_rel 2 0.5\n"
      "link_rel default 0.99\n"
      "link_rel 0 1 0.7\n");
  const SystemSpec spec = load_system(in);
  ASSERT_TRUE(spec.has_reliabilities());
  ASSERT_EQ(spec.site_reliability.size(), 4u);
  EXPECT_DOUBLE_EQ(spec.site_reliability[0], 0.9);
  EXPECT_DOUBLE_EQ(spec.site_reliability[2], 0.5);
  ASSERT_EQ(spec.link_reliability.size(), 4u);
  // Link {0,1} is the first ring link.
  EXPECT_DOUBLE_EQ(spec.link_reliability[0], 0.7);
  EXPECT_DOUBLE_EQ(spec.link_reliability[1], 0.99);
}

TEST(SystemSpecIo, NoRelDirectivesMeansEmptyVectors) {
  std::istringstream in("sites 3\nring\n");
  const SystemSpec spec = load_system(in);
  EXPECT_FALSE(spec.has_reliabilities());
  EXPECT_TRUE(spec.site_reliability.empty());
  EXPECT_TRUE(spec.link_reliability.empty());
}

TEST(SystemSpecIo, LinkRelOnMissingLinkFailsWithItsLine) {
  std::istringstream in(
      "sites 4\n"
      "link 0 1\n"
      "link_rel 2 3 0.5\n");
  try {
    load_system(in);
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 3u);
  }
}

TEST(SystemSpecIo, LinkRelEndpointOrderIsIrrelevant) {
  std::istringstream in(
      "sites 3\n"
      "link 0 2\n"
      "link_rel 2 0 0.4\n");
  const SystemSpec spec = load_system(in);
  EXPECT_DOUBLE_EQ(spec.link_reliability[0], 0.4);
}

TEST(SystemSpecIo, RejectsBadReliabilities) {
  const auto bad = [](const std::string& text) {
    std::istringstream in(text);
    EXPECT_THROW(load_system(in), ParseError) << text;
  };
  bad("sites 3\nsite_rel 0 0.0\n");
  bad("sites 3\nsite_rel 0 1.5\n");
  bad("sites 3\nlink 0 1\nlink_rel 0 1 -0.2\n");
  bad("sites 3\nsite_rel default\n");
}

TEST(SystemSpecIo, SaveSystemRoundTrips) {
  std::istringstream in(
      "sites 4\n"
      "ring\n"
      "vote 1 3\n"
      "site_rel default 0.95\n"
      "site_rel 3 0.5\n"
      "link_rel default 0.9\n"
      "link_rel 1 2 0.8\n");
  const SystemSpec original = load_system(in);
  std::ostringstream out;
  save_system(out, original);
  std::istringstream back(out.str());
  const SystemSpec reloaded = load_system(back);
  EXPECT_EQ(reloaded.site_reliability, original.site_reliability);
  EXPECT_EQ(reloaded.link_reliability, original.link_reliability);
  EXPECT_EQ(reloaded.topology.votes(1), 3u);
}

TEST(TopologyIo, DomainDirectiveLastWins) {
  const net::Topology topo = parse(
      "sites 4\n"
      "ring\n"
      "domain 0 rg0/dc0\n"
      "domain 1 rg0/dc1\n"
      "domain 1 rg1/dc0\n");  // last wins; quora_check flags the overlap
  EXPECT_TRUE(topo.has_domains());
  EXPECT_EQ(topo.domain(0), "rg0/dc0");
  EXPECT_EQ(topo.domain(1), "rg1/dc0");
  EXPECT_EQ(topo.domain(2), "");
}

TEST(TopologyIo, LinkLatDirectivesWithDefault) {
  const net::Topology topo = parse(
      "sites 4\n"
      "ring\n"
      "link_lat default 0.002 0.001\n"
      "link_lat 0 1 0.03 0.01\n");
  EXPECT_TRUE(topo.has_link_latencies());
  const net::LinkId fast = topo.find_link(1, 2);
  const net::LinkId slow = topo.find_link(0, 1);
  ASSERT_LT(fast, topo.link_count());
  ASSERT_LT(slow, topo.link_count());
  EXPECT_DOUBLE_EQ(topo.link_latency(fast).base, 0.002);
  EXPECT_DOUBLE_EQ(topo.link_latency(fast).jitter, 0.001);
  EXPECT_DOUBLE_EQ(topo.link_latency(slow).base, 0.03);
  EXPECT_DOUBLE_EQ(topo.link_latency(slow).jitter, 0.01);
}

TEST(TopologyIo, GeoDirectiveMatchesBuilder) {
  const net::Topology parsed = parse(
      "sites 24\n"
      "geo 3 2 1 4\n");
  const net::Topology built = net::make_geo(net::GeoSpec{});
  ASSERT_EQ(parsed.site_count(), built.site_count());
  ASSERT_EQ(parsed.link_count(), built.link_count());
  for (net::SiteId s = 0; s < built.site_count(); ++s) {
    EXPECT_EQ(parsed.domain(s), built.domain(s)) << "site " << s;
  }
  for (net::LinkId l = 0; l < built.link_count(); ++l) {
    const net::Link& bl = built.link(l);
    const net::LinkId pl = parsed.find_link(bl.a, bl.b);
    ASSERT_LT(pl, parsed.link_count());
    EXPECT_DOUBLE_EQ(parsed.link_latency(pl).base, built.link_latency(l).base);
  }
}

TEST(TopologyIo, DomainAndGeoErrorsCarryLineNumbers) {
  const auto expect_error_at = [](const std::string& text, std::size_t line) {
    try {
      parse(text);
      FAIL() << "expected ParseError";
    } catch (const ParseError& e) {
      EXPECT_EQ(e.line(), line) << e.what();
    }
  };
  expect_error_at("sites 3\ndomain 0\n", 2);              // missing path
  expect_error_at("sites 3\ndomain 9 rg0\n", 2);          // unknown site
  expect_error_at("sites 3\ndomain 0 rg0//dc\n", 2);      // malformed path
  expect_error_at("sites 3\nlink 0 1\nlink_lat 0 1 -1 0\n", 3);
  expect_error_at("sites 3\nlink_lat default 0.1\n", 2);  // missing jitter
  expect_error_at("sites 24\ngeo 3 2 1\n", 2);            // missing tier
  expect_error_at("sites 23\ngeo 3 2 1 4\n", 2);          // product mismatch
  expect_error_at("sites 24\nlink 0 1\ngeo 3 2 1 4\n", 3);  // geo after link
}

TEST(TopologyIo, SaveLoadRoundTripsDomainsAndLatencies) {
  net::Topology original = net::make_geo(net::GeoSpec{});
  original.set_domain(5, "rg0/dc1/special");
  std::ostringstream out;
  save_topology(out, original);
  std::istringstream in(out.str());
  const net::Topology reloaded = load_topology(in);

  ASSERT_EQ(reloaded.site_count(), original.site_count());
  ASSERT_EQ(reloaded.link_count(), original.link_count());
  for (net::SiteId s = 0; s < original.site_count(); ++s) {
    EXPECT_EQ(reloaded.domain(s), original.domain(s)) << "site " << s;
  }
  for (net::LinkId l = 0; l < original.link_count(); ++l) {
    const net::Link& ol = original.link(l);
    const net::LinkId rl = reloaded.find_link(ol.a, ol.b);
    ASSERT_LT(rl, reloaded.link_count());
    EXPECT_DOUBLE_EQ(reloaded.link_latency(rl).base,
                     original.link_latency(l).base);
    EXPECT_DOUBLE_EQ(reloaded.link_latency(rl).jitter,
                     original.link_latency(l).jitter);
  }
  EXPECT_EQ(reloaded.regions(), original.regions());
}

} // namespace
} // namespace quora::io
