// Tests for the reporting layer: table formatting, CSV escaping, and the
// shared figure renderer.

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "metrics/experiment.hpp"
#include "net/builders.hpp"
#include "report/csv.hpp"
#include "report/curve_report.hpp"
#include "report/table.hpp"

namespace quora::report {
namespace {

TEST(TextTable, AlignsColumns) {
  TextTable table({"name", "value"});
  table.add_row({"a", "1"});
  table.add_row({"longer", "22"});
  std::ostringstream out;
  table.print(out);
  const std::string text = out.str();
  // Header, rule, two rows.
  EXPECT_NE(text.find("  name  value"), std::string::npos);
  EXPECT_NE(text.find("     a      1"), std::string::npos);
  EXPECT_NE(text.find("longer     22"), std::string::npos);
  EXPECT_NE(text.find("------"), std::string::npos);
}

TEST(TextTable, SeparatorDrawsRule) {
  TextTable table({"x"});
  table.add_row({"1"});
  table.add_separator();
  table.add_row({"2"});
  std::ostringstream out;
  table.print(out);
  // Two rules: one under the header, one mid-table.
  std::size_t rules = 0;
  std::istringstream in(out.str());
  for (std::string line; std::getline(in, line);) {
    if (!line.empty() && line.find_first_not_of('-') == std::string::npos) ++rules;
  }
  EXPECT_EQ(rules, 2u);
}

TEST(TextTable, RejectsBadShape) {
  EXPECT_THROW(TextTable({}), std::invalid_argument);
  TextTable table({"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), std::invalid_argument);
}

TEST(TextTable, Formatting) {
  EXPECT_EQ(TextTable::fmt(0.12345, 2), "0.12");
  EXPECT_EQ(TextTable::fmt(1.0, 4), "1.0000");
  EXPECT_EQ(TextTable::fmt(-0.5, 1), "-0.5");
  EXPECT_EQ(TextTable::pct(0.256, 1), "25.6%");
  EXPECT_EQ(TextTable::pct(1.0, 0), "100%");
}

TEST(CsvWriter, EscapesOnlyWhenNeeded) {
  EXPECT_EQ(CsvWriter::escape("plain"), "plain");
  EXPECT_EQ(CsvWriter::escape("has,comma"), "\"has,comma\"");
  EXPECT_EQ(CsvWriter::escape("has\"quote"), "\"has\"\"quote\"");
  EXPECT_EQ(CsvWriter::escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(CsvWriter, WritesRows) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.row({"a", "b,c", "d"});
  csv.row({"1", "2", "3"});
  EXPECT_EQ(out.str(), "a,\"b,c\",d\n1,2,3\n");
}

class RenderedCurves : public ::testing::Test {
protected:
  static const metrics::CurveResult& result() {
    static const metrics::CurveResult r = [] {
      sim::SimConfig config;
      config.warmup_accesses = 1'000;
      config.accesses_per_batch = 8'000;
      metrics::MeasurePolicy policy;
      policy.alphas = {0.0, 1.0};
      policy.batch.min_batches = 3;
      policy.batch.max_batches = 3;
      const net::Topology topo = net::make_ring(13);
      return metrics::measure_curves(topo, config, policy);
    }();
    return r;
  }
};

TEST_F(RenderedCurves, TablePrintsEveryRowAtStrideOne) {
  std::ostringstream out;
  print_curve_table(out, result(), 1);
  const std::string text = out.str();
  // One data line per q_r value: count lines starting with a digit.
  std::size_t data_lines = 0;
  std::istringstream in(text);
  for (std::string line; std::getline(in, line);) {
    const auto first = line.find_first_not_of(' ');
    if (first != std::string::npos && std::isdigit(line[first]) &&
        line.find("optimal") == std::string::npos) {
      ++data_lines;
    }
  }
  EXPECT_EQ(data_lines, result().q_values.size());
  // Header carries the topology name and batch count.
  EXPECT_NE(text.find("ring-13"), std::string::npos);
  EXPECT_NE(text.find("batches=3"), std::string::npos);
  // One optimum line per alpha.
  EXPECT_NE(text.find("optimal @ alpha=0.00"), std::string::npos);
  EXPECT_NE(text.find("optimal @ alpha=1.00"), std::string::npos);
}

TEST_F(RenderedCurves, StrideThinsButKeepsEndpoints) {
  std::ostringstream wide;
  print_curve_table(wide, result(), 100);  // stride beyond range
  // First and last q_r rows always survive thinning.
  std::vector<std::string> first_tokens;
  std::istringstream in(wide.str());
  for (std::string line; std::getline(in, line);) {
    std::istringstream cells(line);
    std::string tok;
    if (cells >> tok && !tok.empty() && std::isdigit(tok[0]) &&
        line.find("optimal") == std::string::npos) {
      first_tokens.push_back(tok);
    }
  }
  ASSERT_GE(first_tokens.size(), 1u);
  EXPECT_EQ(first_tokens.front(), "1");
  EXPECT_EQ(first_tokens.back(), std::to_string(result().q_values.back()));
}

TEST_F(RenderedCurves, CsvRoundTripsValues) {
  std::ostringstream out;
  write_curve_csv(out, result());
  std::istringstream in(out.str());
  std::string header;
  std::getline(in, header);
  EXPECT_EQ(header, "q_r,q_w,alpha_0.00,ci_0.00,alpha_1.00,ci_1.00");
  std::size_t rows = 0;
  for (std::string line; std::getline(in, line);) ++rows;
  EXPECT_EQ(rows, result().q_values.size());
}

TEST_F(RenderedCurves, OptimumLineNamesTheArgmax) {
  const std::string line = optimum_line(result(), 1.0);
  EXPECT_NE(line.find("alpha=1.00"), std::string::npos);
  EXPECT_NE(line.find("q_r=1 "), std::string::npos);  // ring, all reads
}

} // namespace
} // namespace quora::report
