// Direct unit coverage of msg::check_safety on hand-crafted violating
// histories — one test per Invariant code (src/msg/invariants.hpp). The
// simulation suites only reach these paths when a fault plan actually
// breaks the protocol; here each detector is pinned down in isolation
// through the borrowed SafetyView, with no Cluster in sight.

#include <gtest/gtest.h>

#include <limits>

#include "msg/invariants.hpp"

namespace {

using quora::msg::AccessOutcome;
using quora::msg::Cluster;
using quora::msg::Invariant;
using quora::msg::SafetyReport;
using quora::msg::SafetyView;
using quora::msg::check_safety;

AccessOutcome granted(double submit, double decide, bool is_read,
                      std::uint64_t version, std::uint64_t qr_version = 1) {
  AccessOutcome o;
  o.submit_time = submit;
  o.decide_time = decide;
  o.is_read = is_read;
  o.granted = true;
  o.version = version;
  o.qr_version = qr_version;
  return o;
}

TEST(Invariants, CleanHistoriesReportSafe) {
  const std::vector<AccessOutcome> outcomes = {
      granted(1.0, 2.0, /*is_read=*/false, 1),
      granted(3.0, 4.0, /*is_read=*/true, 1),
  };
  const std::vector<Cluster::CommitRecord> commits = {{1, 2.0}};
  const SafetyReport report = check_safety(SafetyView{&outcomes, &commits,
                                                      nullptr});
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.reads_checked, 1u);
  EXPECT_EQ(report.writes_checked, 1u);
}

TEST(Invariants, StaleReadIsCaught) {
  // v2's commit decided at t=2; a read submitted at t=3 returning v1
  // missed a write that finished strictly before it started.
  const std::vector<AccessOutcome> outcomes = {
      granted(3.0, 4.0, /*is_read=*/true, 1),
  };
  const std::vector<Cluster::CommitRecord> commits = {{1, 1.0}, {2, 2.0}};
  const SafetyReport report = check_safety(SafetyView{&outcomes, &commits,
                                                      nullptr});
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(report.has(Invariant::kReadConsistency));
  EXPECT_NE(report.violations[0].message.find("[stale-read]"),
            std::string::npos);
}

TEST(Invariants, ReadConcurrentWithWriteMayMissIt) {
  // The write decides AFTER the read submits — missing it is allowed
  // (real-time consistency only orders non-overlapping operations).
  const std::vector<AccessOutcome> outcomes = {
      granted(1.5, 3.0, /*is_read=*/true, 1),
  };
  const std::vector<Cluster::CommitRecord> commits = {{1, 1.0}, {2, 2.0}};
  EXPECT_TRUE(check_safety(SafetyView{&outcomes, &commits, nullptr}).ok());
}

TEST(Invariants, DuplicateVersionIsCaught) {
  // Two writes both committed v5 — the write-lease/quorum-intersection
  // guarantee is broken. No outcomes needed: the commit log says it all.
  const std::vector<Cluster::CommitRecord> commits = {{4, 1.0}, {5, 2.0},
                                                      {5, 3.0}};
  const SafetyReport report = check_safety(SafetyView{nullptr, &commits,
                                                      nullptr});
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(report.has(Invariant::kUniqueVersions));
  EXPECT_NE(report.violations[0].message.find("[duplicate-version]"),
            std::string::npos);
}

TEST(Invariants, StaleAssignmentGrantIsCaught) {
  // QR v2 was installed (decided) at t=2; an access submitted at t=3
  // still ran under v1 — §2.2 requires the voter to reject it.
  const std::vector<AccessOutcome> outcomes = {
      granted(3.0, 4.0, /*is_read=*/true, 1, /*qr_version=*/1),
  };
  const std::vector<Cluster::InstallRecord> installs = {
      {2, 2.0, 0, quora::quorum::QuorumSpec{1, 3}},
  };
  const SafetyReport report = check_safety(SafetyView{&outcomes, nullptr,
                                                      &installs});
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(report.has(Invariant::kFreshAssignment));
  EXPECT_NE(report.violations[0].message.find("[stale-assignment]"),
            std::string::npos);
}

TEST(Invariants, AccessUnderFreshAssignmentIsSafe) {
  // Same history, but the access ran under the installed version.
  const std::vector<AccessOutcome> outcomes = {
      granted(3.0, 4.0, /*is_read=*/true, 1, /*qr_version=*/2),
  };
  const std::vector<Cluster::InstallRecord> installs = {
      {2, 2.0, 0, quora::quorum::QuorumSpec{1, 3}},
  };
  EXPECT_TRUE(check_safety(SafetyView{&outcomes, nullptr, &installs}).ok());
}

TEST(Invariants, AcausalDecisionIsCaught) {
  // Decided before it was submitted. Denials are checked too — causality
  // is about the records, not the verdict.
  std::vector<AccessOutcome> outcomes = {granted(5.0, 4.0, true, 1)};
  outcomes[0].granted = false;
  const SafetyReport report = check_safety(SafetyView{&outcomes, nullptr,
                                                      nullptr});
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(report.has(Invariant::kCausalTimes));
  EXPECT_NE(report.violations[0].message.find("[acausal-decision]"),
            std::string::npos);
}

TEST(Invariants, NonFiniteDecisionTimeIsAcausal) {
  const std::vector<AccessOutcome> outcomes = {
      granted(1.0, std::numeric_limits<double>::infinity(), true, 1),
  };
  EXPECT_TRUE(check_safety(SafetyView{&outcomes, nullptr, nullptr})
                  .has(Invariant::kCausalTimes));
}

TEST(Invariants, CommitLogOutOfOrderIsCaught) {
  // The later entry decided earlier — the append-order precondition the
  // binary-searched invariants rely on is broken.
  const std::vector<Cluster::CommitRecord> commits = {{1, 5.0}, {2, 3.0}};
  const SafetyReport report = check_safety(SafetyView{nullptr, &commits,
                                                      nullptr});
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(report.has(Invariant::kCommitOrder));
  EXPECT_NE(report.violations[0].message.find("[commit-order]"),
            std::string::npos);
}

TEST(Invariants, SlugsAreStableAndUnique) {
  EXPECT_STREQ(quora::msg::invariant_slug(Invariant::kReadConsistency),
               "stale-read");
  EXPECT_STREQ(quora::msg::invariant_slug(Invariant::kUniqueVersions),
               "duplicate-version");
  EXPECT_STREQ(quora::msg::invariant_slug(Invariant::kFreshAssignment),
               "stale-assignment");
  EXPECT_STREQ(quora::msg::invariant_slug(Invariant::kCausalTimes),
               "acausal-decision");
  EXPECT_STREQ(quora::msg::invariant_slug(Invariant::kCommitOrder),
               "commit-order");
}

} // namespace
