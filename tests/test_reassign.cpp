// Tests for the quorum reassignment protocol (QR, §2.2): effective
// assignment resolution, the install-under-old-write-quorum rule,
// propagation on merge, and a randomized safety fuzz establishing the
// paper's central claim — no access is ever granted under a superseded
// assignment.

#include <gtest/gtest.h>

#include <stdexcept>

#include "conn/component_tracker.hpp"
#include "conn/live_network.hpp"
#include "core/reassign.hpp"
#include "net/builders.hpp"
#include "quorum/quorum_spec.hpp"
#include "rng/distributions.hpp"
#include "rng/xoshiro256ss.hpp"

namespace quora::core {
namespace {

using quorum::AccessType;
using quorum::QuorumSpec;

TEST(QuorumReassignment, InitialStateIsVersionOneEverywhere) {
  const net::Topology topo = net::make_ring(7);
  const QuorumReassignment qr(topo, QuorumSpec{3, 5});
  EXPECT_EQ(qr.latest_version(), 1u);
  for (net::SiteId s = 0; s < 7; ++s) {
    EXPECT_EQ(qr.stored(s).version, 1u);
    EXPECT_EQ(qr.stored(s).spec, (QuorumSpec{3, 5}));
  }
  EXPECT_THROW(QuorumReassignment(topo, QuorumSpec{3, 4}), std::invalid_argument);
}

TEST(QuorumReassignment, InstallRequiresWriteQuorumOfOldAssignment) {
  const net::Topology topo = net::make_ring(10);
  conn::LiveNetwork live(topo);
  const conn::ComponentTracker tracker(live);
  QuorumReassignment qr(topo, QuorumSpec{5, 6});

  // Partition into {1..4} (4 votes) and {5..9,0} (6 votes).
  live.set_link_up(0, false);
  live.set_link_up(4, false);

  // Minority side cannot install.
  EXPECT_FALSE(qr.try_install(tracker, 2, QuorumSpec{1, 10}));
  EXPECT_EQ(qr.latest_version(), 1u);

  // Majority side can.
  EXPECT_TRUE(qr.try_install(tracker, 7, QuorumSpec{1, 10}));
  EXPECT_EQ(qr.latest_version(), 2u);
  // Every up member of the installing component got the new assignment...
  for (const net::SiteId s : {5u, 6u, 7u, 8u, 9u, 0u}) {
    EXPECT_EQ(qr.stored(s).version, 2u);
  }
  // ...and the other side still stores the old one.
  for (const net::SiteId s : {1u, 2u, 3u, 4u}) {
    EXPECT_EQ(qr.stored(s).version, 1u);
  }
}

TEST(QuorumReassignment, EffectiveTakesMaxVersionInComponent) {
  const net::Topology topo = net::make_ring(10);
  conn::LiveNetwork live(topo);
  const conn::ComponentTracker tracker(live);
  QuorumReassignment qr(topo, QuorumSpec{5, 6});

  live.set_link_up(0, false);
  live.set_link_up(4, false);
  ASSERT_TRUE(qr.try_install(tracker, 7, QuorumSpec{2, 9}));

  // Heal the partition: sites with version 1 now share a component with
  // version-2 sites; effective() must report version 2 for everyone.
  live.set_link_up(0, true);
  live.set_link_up(4, true);
  for (net::SiteId s = 0; s < 10; ++s) {
    const auto eff = qr.effective(tracker, s);
    EXPECT_EQ(eff.version, 2u) << "site " << s;
    EXPECT_EQ(eff.spec, (QuorumSpec{2, 9}));
  }
  // Stored state lags until propagate() compacts it.
  EXPECT_EQ(qr.stored(2).version, 1u);
  qr.propagate(tracker);
  for (net::SiteId s = 0; s < 10; ++s) EXPECT_EQ(qr.stored(s).version, 2u);
}

TEST(QuorumReassignment, RequestUsesEffectiveAssignment) {
  const net::Topology topo = net::make_ring(10);
  conn::LiveNetwork live(topo);
  const conn::ComponentTracker tracker(live);
  QuorumReassignment qr(topo, QuorumSpec{5, 6});

  // Under {5,6}, a 4-vote component denies reads.
  live.set_link_up(0, false);
  live.set_link_up(4, false);
  EXPECT_FALSE(qr.request(tracker, 2, AccessType::kRead).granted);

  // Install {2,9} from the majority side, heal (letting the merged
  // component exchange assignments), then re-partition: the small side's
  // reads are now granted under the *new* assignment it learned.
  ASSERT_TRUE(qr.try_install(tracker, 7, QuorumSpec{2, 9}));
  live.set_link_up(0, true);
  ASSERT_TRUE(tracker.connected(2, 7));
  qr.propagate(tracker);  // the merge-time state update of 2.2
  live.set_link_up(2, false);  // cut {2,3}: component {3,4} has 2 votes
  EXPECT_TRUE(qr.request(tracker, 3, AccessType::kRead).granted);
  EXPECT_FALSE(qr.request(tracker, 3, AccessType::kWrite).granted);
}

TEST(QuorumReassignment, RejectsBadInstalls) {
  const net::Topology topo = net::make_ring(8);
  conn::LiveNetwork live(topo);
  const conn::ComponentTracker tracker(live);
  QuorumReassignment qr(topo, QuorumSpec{4, 5});

  EXPECT_FALSE(qr.try_install(tracker, 0, QuorumSpec{4, 4}));  // invalid spec
  EXPECT_FALSE(qr.try_install(tracker, 0, QuorumSpec{4, 5}));  // no-op
  live.set_site_up(3, false);
  EXPECT_FALSE(qr.try_install(tracker, 3, QuorumSpec{1, 8}));  // down origin
  EXPECT_EQ(qr.latest_version(), 1u);
}

TEST(QuorumReassignment, RecoveredSiteLearnsOnNextContact) {
  const net::Topology topo = net::make_ring(6);
  conn::LiveNetwork live(topo);
  const conn::ComponentTracker tracker(live);
  QuorumReassignment qr(topo, QuorumSpec{3, 4});

  live.set_site_up(2, false);
  ASSERT_TRUE(qr.try_install(tracker, 0, QuorumSpec{1, 6}));
  EXPECT_EQ(qr.stored(2).version, 1u);  // down: kept the stale assignment

  live.set_site_up(2, true);
  // Its effective view immediately reflects the component's newest.
  EXPECT_EQ(qr.effective(tracker, 2).version, 2u);
  qr.propagate(tracker);
  EXPECT_EQ(qr.stored(2).version, 2u);
}

TEST(QuorumReassignment, ChainedInstallsIncrementVersions) {
  const net::Topology topo = net::make_ring(9);
  conn::LiveNetwork live(topo);
  const conn::ComponentTracker tracker(live);
  QuorumReassignment qr(topo, QuorumSpec{4, 6});

  ASSERT_TRUE(qr.try_install(tracker, 0, QuorumSpec{3, 7}));
  ASSERT_TRUE(qr.try_install(tracker, 1, QuorumSpec{2, 8}));
  ASSERT_TRUE(qr.try_install(tracker, 2, QuorumSpec{4, 6}));
  EXPECT_EQ(qr.latest_version(), 4u);
  EXPECT_EQ(qr.effective(tracker, 5).spec, (QuorumSpec{4, 6}));
}

/// The §2.2 safety argument, fuzzed: across random failures, recoveries
/// and installs, an access is granted only when its component's effective
/// assignment is the globally newest one.
TEST(QuorumReassignment, NoAccessEverGrantedUnderStaleAssignment) {
  rng::Xoshiro256ss gen(777);
  const net::Topology topo = net::make_ring_with_chords(12, 4);
  const net::Vote total = topo.total_votes();

  conn::LiveNetwork live(topo);
  const conn::ComponentTracker tracker(live);
  QuorumReassignment qr(topo, quorum::majority(total));
  std::uint64_t granted = 0;
  std::uint64_t installs = 0;

  for (int step = 0; step < 30'000; ++step) {
    const double u = gen.next_double();
    // Failure/recovery rates biased 1:2 so roughly two thirds of the
    // network is up — partitions happen, but write quorums stay reachable
    // often enough for installs to be exercised.
    if (u < 0.08) {
      const auto s =
          static_cast<net::SiteId>(rng::uniform_index(gen, topo.site_count()));
      live.set_site_up(s, false);
    } else if (u < 0.24) {
      const auto s =
          static_cast<net::SiteId>(rng::uniform_index(gen, topo.site_count()));
      live.set_site_up(s, true);
    } else if (u < 0.32) {
      const auto l =
          static_cast<net::LinkId>(rng::uniform_index(gen, topo.link_count()));
      live.set_link_up(l, false);
    } else if (u < 0.48) {
      const auto l =
          static_cast<net::LinkId>(rng::uniform_index(gen, topo.link_count()));
      live.set_link_up(l, true);
    } else if (u < 0.70) {
      // Attempt an install of a random canonical assignment.
      const auto q_r = static_cast<net::Vote>(
          1 + rng::uniform_index(gen, quorum::max_read_quorum(total)));
      const auto origin =
          static_cast<net::SiteId>(rng::uniform_index(gen, topo.site_count()));
      installs += qr.try_install(tracker, origin, quorum::from_read_quorum(total, q_r));
    } else {
      const auto origin =
          static_cast<net::SiteId>(rng::uniform_index(gen, topo.site_count()));
      const auto type =
          rng::bernoulli(gen, 0.5) ? AccessType::kRead : AccessType::kWrite;
      const auto decision = qr.request(tracker, origin, type);
      if (decision.granted) {
        ++granted;
        EXPECT_EQ(qr.effective(tracker, origin).version, qr.latest_version())
            << "STALE GRANT at step " << step;
      }
    }
  }
  EXPECT_GT(granted, 1000u);  // non-vacuous
  // Installs are rarer than attempts: once a high-q_w assignment lands,
  // further installs need that many votes in one component (the lock-in
  // the abl_dynamic_qr bench demonstrates). A few dozen over the run
  // still exercises every code path.
  EXPECT_GT(installs, 20u);
}

} // namespace
} // namespace quora::core
