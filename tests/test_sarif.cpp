// Round-trip tests for the shared SARIF 2.1.0 writer
// (src/io/config_audit.hpp): the emitted log is parsed back with a
// minimal JSON reader and the structure the SARIF schema (and GitHub
// code scanning) requires is asserted field by field — $schema/version,
// tool.driver with a rule table, ruleId/ruleIndex agreement, physical
// locations, and string escaping.

#include <gtest/gtest.h>

#include <cctype>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "io/config_audit.hpp"

namespace {

using quora::io::SarifResult;
using quora::io::SarifRule;

// ------------------------------------------------------ tiny JSON reader

struct Json {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<Json> array;
  std::map<std::string, Json> object;

  const Json& at(const std::string& key) const {
    static const Json missing;
    auto it = object.find(key);
    return it == object.end() ? missing : it->second;
  }
  bool has(const std::string& key) const { return object.count(key) > 0; }
};

class Parser {
public:
  explicit Parser(const std::string& text) : text_(text) {}

  bool parse(Json* out) {
    const bool ok = value(out);
    skip_ws();
    return ok && pos_ == text_.size();
  }

private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }
  bool literal(const char* word) {
    const std::size_t n = std::string(word).size();
    if (text_.compare(pos_, n, word) != 0) return false;
    pos_ += n;
    return true;
  }
  bool string(std::string* out) {
    if (pos_ >= text_.size() || text_[pos_] != '"') return false;
    ++pos_;
    out->clear();
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\' && pos_ < text_.size()) {
        const char esc = text_[pos_++];
        switch (esc) {
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case 'r': c = '\r'; break;
          case '"': c = '"'; break;
          case '\\': c = '\\'; break;
          case '/': c = '/'; break;
          default: return false;  // \uXXXX etc. unused by the writer
        }
      }
      out->push_back(c);
    }
    if (pos_ >= text_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }
  bool value(Json* out) {
    skip_ws();
    if (pos_ >= text_.size()) return false;
    const char c = text_[pos_];
    if (c == '{') {
      ++pos_;
      out->kind = Json::Kind::kObject;
      skip_ws();
      if (pos_ < text_.size() && text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      while (true) {
        skip_ws();
        std::string key;
        if (!string(&key)) return false;
        skip_ws();
        if (pos_ >= text_.size() || text_[pos_++] != ':') return false;
        Json child;
        if (!value(&child)) return false;
        out->object.emplace(std::move(key), std::move(child));
        skip_ws();
        if (pos_ >= text_.size()) return false;
        if (text_[pos_] == ',') {
          ++pos_;
          continue;
        }
        if (text_[pos_] == '}') {
          ++pos_;
          return true;
        }
        return false;
      }
    }
    if (c == '[') {
      ++pos_;
      out->kind = Json::Kind::kArray;
      skip_ws();
      if (pos_ < text_.size() && text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      while (true) {
        Json child;
        if (!value(&child)) return false;
        out->array.push_back(std::move(child));
        skip_ws();
        if (pos_ >= text_.size()) return false;
        if (text_[pos_] == ',') {
          ++pos_;
          continue;
        }
        if (text_[pos_] == ']') {
          ++pos_;
          return true;
        }
        return false;
      }
    }
    if (c == '"') {
      out->kind = Json::Kind::kString;
      return string(&out->str);
    }
    if (c == 't' || c == 'f') {
      out->kind = Json::Kind::kBool;
      out->boolean = c == 't';
      return literal(c == 't' ? "true" : "false");
    }
    if (c == 'n') {
      out->kind = Json::Kind::kNull;
      return literal("null");
    }
    out->kind = Json::Kind::kNumber;
    std::size_t used = 0;
    try {
      out->number = std::stod(text_.substr(pos_), &used);
    } catch (const std::exception&) {
      return false;
    }
    pos_ += used;
    return used > 0;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

Json write_and_parse(const std::vector<SarifRule>& rules,
                     const std::vector<SarifResult>& results,
                     const std::string& tool = "quora_lint",
                     const std::string& version = "") {
  std::ostringstream out;
  quora::io::write_sarif(out, tool, version, rules, results);
  Json log;
  EXPECT_TRUE(Parser(out.str()).parse(&log)) << out.str();
  return log;
}

std::vector<SarifRule> two_rules() {
  return {{"L006", "hot-path-allocation", "allocation on a hot path"},
          {"L007", "cross-shard-state", "state crosses a shard boundary"}};
}

// ------------------------------------------------------------- the tests

TEST(SarifWriter, EmitsTheRequiredTopLevelStructure) {
  const Json log = write_and_parse(two_rules(), {});
  EXPECT_EQ(log.at("version").str, "2.1.0");
  EXPECT_NE(log.at("$schema").str.find("sarif-schema-2.1.0.json"),
            std::string::npos);
  ASSERT_EQ(log.at("runs").array.size(), 1u);
  const Json& driver = log.at("runs").array[0].at("tool").at("driver");
  EXPECT_EQ(driver.at("name").str, "quora_lint");
  EXPECT_FALSE(driver.has("version"));  // omitted when empty
  ASSERT_EQ(driver.at("rules").array.size(), 2u);
  const Json& rule = driver.at("rules").array[0];
  EXPECT_EQ(rule.at("id").str, "L006");
  EXPECT_EQ(rule.at("name").str, "hot-path-allocation");
  EXPECT_EQ(rule.at("shortDescription").at("text").str,
            "allocation on a hot path");
  EXPECT_EQ(log.at("runs").array[0].at("results").array.size(), 0u);
}

TEST(SarifWriter, ResultsRoundTripWithRuleIndexAndLocation) {
  SarifResult r;
  r.rule_id = "L007";
  r.level = "error";
  r.message = "shard \"msg\" reached\nfrom sim";  // exercises escaping
  r.path = "src/sim/simulator.cpp";
  r.line = 42;
  r.column = 7;
  const Json log = write_and_parse(two_rules(), {r}, "quora_lint", "0.6");
  const Json& run = log.at("runs").array[0];
  EXPECT_EQ(run.at("tool").at("driver").at("version").str, "0.6");
  ASSERT_EQ(run.at("results").array.size(), 1u);
  const Json& result = run.at("results").array[0];
  EXPECT_EQ(result.at("ruleId").str, "L007");
  EXPECT_EQ(result.at("ruleIndex").number, 1.0);  // second table entry
  EXPECT_EQ(result.at("level").str, "error");
  EXPECT_EQ(result.at("message").at("text").str,
            "shard \"msg\" reached\nfrom sim");
  ASSERT_EQ(result.at("locations").array.size(), 1u);
  const Json& physical = result.at("locations").array[0].at("physicalLocation");
  EXPECT_EQ(physical.at("artifactLocation").at("uri").str,
            "src/sim/simulator.cpp");
  EXPECT_EQ(physical.at("region").at("startLine").number, 42.0);
  EXPECT_EQ(physical.at("region").at("startColumn").number, 7.0);
}

TEST(SarifWriter, OmitsLocationAndRuleIndexWhenUnknown) {
  SarifResult r;
  r.rule_id = "L999";  // not in the rule table
  r.level = "warning";
  r.message = "no file, no region";
  const Json log = write_and_parse(two_rules(), {r});
  const Json& result = log.at("runs").array[0].at("results").array[0];
  EXPECT_FALSE(result.has("ruleIndex"));
  EXPECT_FALSE(result.has("locations"));
  EXPECT_EQ(result.at("level").str, "warning");
}

TEST(SarifWriter, AuditFindingsMapOntoTheSharedWriter) {
  const std::vector<SarifRule> rules = quora::io::audit_sarif_rules();
  ASSERT_GE(rules.size(), 15u);  // every AuditCode is a rule
  for (const SarifRule& rule : rules) {
    EXPECT_FALSE(rule.id.empty());
    EXPECT_FALSE(rule.short_description.empty());
  }

  quora::io::AuditFinding finding;
  finding.code = quora::io::AuditCode::kQuorumIntersection;
  finding.severity = quora::io::AuditSeverity::kError;
  finding.message = "q_r + q_w <= T";
  const SarifResult mapped =
      quora::io::audit_sarif_result(finding, "examples/bad.cfg");
  EXPECT_EQ(mapped.rule_id, "quorum-intersection");
  EXPECT_EQ(mapped.level, "error");
  EXPECT_EQ(mapped.path, "examples/bad.cfg");

  const Json log = write_and_parse(rules, {mapped}, "quora_check");
  const Json& result = log.at("runs").array[0].at("results").array[0];
  EXPECT_EQ(result.at("ruleId").str, "quorum-intersection");
  ASSERT_TRUE(result.has("ruleIndex"));
  // The index must point back at the matching rule row.
  const std::size_t idx = static_cast<std::size_t>(result.at("ruleIndex").number);
  EXPECT_EQ(log.at("runs")
                .array[0]
                .at("tool")
                .at("driver")
                .at("rules")
                .array[idx]
                .at("id")
                .str,
            "quorum-intersection");
  // File-level finding: artifact location without a region.
  const Json& physical =
      result.at("locations").array[0].at("physicalLocation");
  EXPECT_EQ(physical.at("artifactLocation").at("uri").str, "examples/bad.cfg");
  EXPECT_FALSE(physical.has("region"));
}

TEST(SarifWriter, AdaptConfigCodeRoundTrips) {
  // The adaptive-control audit code must appear in the shared rule table
  // and survive the writer round trip like every other code.
  const std::vector<SarifRule> rules = quora::io::audit_sarif_rules();
  std::size_t adapt_row = rules.size();
  for (std::size_t i = 0; i < rules.size(); ++i) {
    if (rules[i].id == "adapt-config") adapt_row = i;
  }
  ASSERT_LT(adapt_row, rules.size()) << "adapt-config missing from rule table";

  quora::io::AuditFinding finding;
  finding.code = quora::io::AuditCode::kAdaptConfig;
  finding.severity = quora::io::AuditSeverity::kError;
  finding.message = "adapt_threshold 1.5 outside [0, 1]";
  const SarifResult mapped =
      quora::io::audit_sarif_result(finding, "examples/configs/broken/adapt.quora");
  EXPECT_EQ(mapped.rule_id, "adapt-config");
  EXPECT_EQ(mapped.level, "error");

  const Json log = write_and_parse(rules, {mapped}, "quora_check");
  const Json& result = log.at("runs").array[0].at("results").array[0];
  EXPECT_EQ(result.at("ruleId").str, "adapt-config");
  ASSERT_TRUE(result.has("ruleIndex"));
  EXPECT_EQ(static_cast<std::size_t>(result.at("ruleIndex").number), adapt_row);
  EXPECT_EQ(result.at("message").at("text").str,
            "adapt_threshold 1.5 outside [0, 1]");
}

TEST(SarifWriter, ModelScopeConfigCodeRoundTrips) {
  // The `.model` scope audit code (quora_check on model-checker scopes)
  // must appear in the shared rule table and survive the writer round
  // trip like every other code.
  const std::vector<SarifRule> rules = quora::io::audit_sarif_rules();
  std::size_t row = rules.size();
  for (std::size_t i = 0; i < rules.size(); ++i) {
    if (rules[i].id == "model-scope-config") row = i;
  }
  ASSERT_LT(row, rules.size()) << "model-scope-config missing from rule table";

  quora::io::AuditFinding finding;
  finding.code = quora::io::AuditCode::kModelScopeConfig;
  finding.severity = quora::io::AuditSeverity::kError;
  finding.message = "scope has 6 sites; bounded exploration handles at most 4";
  const SarifResult mapped = quora::io::audit_sarif_result(
      finding, "examples/model/broken/too_large.model");
  EXPECT_EQ(mapped.rule_id, "model-scope-config");
  EXPECT_EQ(mapped.level, "error");

  const Json log = write_and_parse(rules, {mapped}, "quora_check");
  const Json& result = log.at("runs").array[0].at("results").array[0];
  EXPECT_EQ(result.at("ruleId").str, "model-scope-config");
  ASSERT_TRUE(result.has("ruleIndex"));
  EXPECT_EQ(static_cast<std::size_t>(result.at("ruleIndex").number), row);
  const Json& physical =
      result.at("locations").array[0].at("physicalLocation");
  EXPECT_EQ(physical.at("artifactLocation").at("uri").str,
            "examples/model/broken/too_large.model");
}

} // namespace
