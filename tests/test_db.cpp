// Tests for the multi-object database layer: per-object quorum
// assignments, transaction atomicity, per-object one-copy
// serializability, and the access statistics feeding per-object
// optimization.

#include <gtest/gtest.h>

#include <stdexcept>

#include "conn/component_tracker.hpp"
#include "conn/live_network.hpp"
#include "db/database.hpp"
#include "net/builders.hpp"
#include "quorum/quorum_spec.hpp"
#include "rng/distributions.hpp"
#include "rng/xoshiro256ss.hpp"

namespace quora::db {
namespace {

using quorum::QuorumSpec;

Database make_db(const net::Topology& topo) {
  return Database(topo, {{"catalog", QuorumSpec{1, 10}},   // read-one
                         {"orders", QuorumSpec{5, 6}},     // balanced
                         {"config", QuorumSpec{4, 7}}});
}

TEST(Database, ValidatesConstruction) {
  const net::Topology topo = net::make_ring(10);
  EXPECT_THROW(Database(topo, {}), std::invalid_argument);
  EXPECT_THROW(Database(topo, {{"x", QuorumSpec{4, 6}}}), std::invalid_argument);
  EXPECT_THROW(Database(topo, {{"x", QuorumSpec{5, 6}}, {"x", QuorumSpec{5, 6}}}),
               std::invalid_argument);
}

TEST(Database, ObjectLookup) {
  const net::Topology topo = net::make_ring(10);
  const Database db = make_db(topo);
  EXPECT_EQ(db.object_count(), 3u);
  EXPECT_EQ(db.object_id("orders"), 1u);
  EXPECT_EQ(db.object_name(2), "config");
  EXPECT_THROW(db.object_id("missing"), std::out_of_range);
}

TEST(Database, ObjectsAreIndependent) {
  const net::Topology topo = net::make_ring(10);
  Database db = make_db(topo);
  conn::LiveNetwork live(topo);
  const conn::ComponentTracker tracker(live);

  ASSERT_TRUE(db.write(tracker, 0, db.object_id("catalog"), 100).granted);
  ASSERT_TRUE(db.write(tracker, 0, db.object_id("orders"), 200).granted);
  const auto catalog = db.read(tracker, 3, db.object_id("catalog"));
  const auto orders = db.read(tracker, 3, db.object_id("orders"));
  EXPECT_EQ(catalog.value, 100u);
  EXPECT_EQ(orders.value, 200u);

  // Versions advance per object, not globally.
  ASSERT_TRUE(db.write(tracker, 1, db.object_id("catalog"), 101).granted);
  EXPECT_EQ(db.read(tracker, 2, db.object_id("catalog")).version, 2u);
  EXPECT_EQ(db.read(tracker, 2, db.object_id("orders")).version, 1u);
}

TEST(Database, PerObjectSpecsGateIndependently) {
  const net::Topology topo = net::make_ring(10);
  Database db = make_db(topo);
  conn::LiveNetwork live(topo);
  const conn::ComponentTracker tracker(live);

  // Partition into {1..4} (4 votes) and {5..9,0} (6 votes).
  live.set_link_up(0, false);
  live.set_link_up(4, false);

  // catalog (q_r = 1) reads anywhere; orders (q_r = 5) only majority side.
  EXPECT_TRUE(db.read(tracker, 2, db.object_id("catalog")).granted);
  EXPECT_FALSE(db.read(tracker, 2, db.object_id("orders")).granted);
  EXPECT_TRUE(db.read(tracker, 7, db.object_id("orders")).granted);
  // catalog writes (q_w = 10) fail everywhere under this partition.
  EXPECT_FALSE(db.write(tracker, 7, db.object_id("catalog"), 7).granted);
  EXPECT_TRUE(db.write(tracker, 7, db.object_id("orders"), 7).granted);
}

TEST(Database, SetObjectSpecTakesEffect) {
  const net::Topology topo = net::make_ring(10);
  Database db = make_db(topo);
  conn::LiveNetwork live(topo);
  const conn::ComponentTracker tracker(live);
  live.set_link_up(0, false);
  live.set_link_up(4, false);

  const ObjectId catalog = db.object_id("catalog");
  EXPECT_FALSE(db.write(tracker, 7, catalog, 1).granted);  // q_w = 10
  db.set_object_spec(catalog, QuorumSpec{5, 6});
  EXPECT_TRUE(db.write(tracker, 7, catalog, 1).granted);  // q_w = 6 now
  EXPECT_THROW(db.set_object_spec(catalog, QuorumSpec{4, 6}),
               std::invalid_argument);
}

TEST(Database, TransactionCommitsAtomically) {
  const net::Topology topo = net::make_ring(10);
  Database db = make_db(topo);
  conn::LiveNetwork live(topo);
  const conn::ComponentTracker tracker(live);

  const std::vector<Database::Op> ops{
      {db.object_id("catalog"), true, 11},
      {db.object_id("orders"), true, 22},
  };
  const auto result = db.execute(tracker, 0, ops);
  EXPECT_TRUE(result.committed);
  EXPECT_EQ(db.read(tracker, 5, db.object_id("catalog")).value, 11u);
  EXPECT_EQ(db.read(tracker, 5, db.object_id("orders")).value, 22u);
}

TEST(Database, TransactionAbortsWholesale) {
  const net::Topology topo = net::make_ring(10);
  Database db = make_db(topo);
  conn::LiveNetwork live(topo);
  const conn::ComponentTracker tracker(live);

  ASSERT_TRUE(db.write(tracker, 0, db.object_id("orders"), 1).granted);

  live.set_link_up(0, false);
  live.set_link_up(4, false);  // majority side = {5..9,0}, 6 votes

  // catalog write needs q_w = 10: unsatisfiable -> the WHOLE transaction
  // aborts, including the orders write that alone would have succeeded.
  const std::vector<Database::Op> ops{
      {db.object_id("orders"), true, 99},
      {db.object_id("catalog"), true, 99},
  };
  const auto result = db.execute(tracker, 7, ops);
  EXPECT_FALSE(result.committed);
  EXPECT_TRUE(result.reads.empty());
  EXPECT_EQ(db.read(tracker, 7, db.object_id("orders")).value, 1u)
      << "aborted transaction must leave no partial effects";
}

TEST(Database, TransactionReadsReturnInOrder) {
  const net::Topology topo = net::make_ring(10);
  Database db = make_db(topo);
  conn::LiveNetwork live(topo);
  const conn::ComponentTracker tracker(live);
  ASSERT_TRUE(db.write(tracker, 0, 0, 10).granted);
  ASSERT_TRUE(db.write(tracker, 0, 1, 20).granted);

  const std::vector<Database::Op> ops{
      {1, false, 0}, {0, false, 0}, {1, true, 21}, {1, false, 0}};
  const auto result = db.execute(tracker, 3, ops);
  ASSERT_TRUE(result.committed);
  ASSERT_EQ(result.reads.size(), 3u);
  EXPECT_EQ(result.reads[0], 20u);
  EXPECT_EQ(result.reads[1], 10u);
  EXPECT_EQ(result.reads[2], 21u);  // sees the write earlier in the txn
}

TEST(Database, StatsTrackPerObjectMix) {
  const net::Topology topo = net::make_ring(10);
  Database db = make_db(topo);
  conn::LiveNetwork live(topo);
  const conn::ComponentTracker tracker(live);

  const ObjectId catalog = db.object_id("catalog");
  for (int i = 0; i < 9; ++i) db.read(tracker, 0, catalog);
  db.write(tracker, 0, catalog, 1);
  EXPECT_EQ(db.stats(catalog).reads, 9u);
  EXPECT_EQ(db.stats(catalog).writes, 1u);
  EXPECT_NEAR(db.stats(catalog).alpha_estimate(), 0.9, 1e-12);
  EXPECT_EQ(db.stats(db.object_id("orders")).reads, 0u);
}

TEST(Database, PerObjectOneCopySerializabilityUnderFuzz) {
  rng::Xoshiro256ss gen(31337);
  const net::Topology topo = net::make_ring_with_chords(11, 2);
  Database db(topo, {{"a", QuorumSpec{2, 10}},
                     {"b", QuorumSpec{5, 7}},
                     {"c", QuorumSpec{5, 7}}});
  conn::LiveNetwork live(topo);
  const conn::ComponentTracker tracker(live);
  std::uint64_t value = 1;
  std::uint64_t granted_reads = 0;
  std::uint64_t committed_txns = 0;

  for (int step = 0; step < 20'000; ++step) {
    const double u = gen.next_double();
    const auto origin =
        static_cast<net::SiteId>(rng::uniform_index(gen, topo.site_count()));
    const auto object =
        static_cast<ObjectId>(rng::uniform_index(gen, db.object_count()));
    // Failure/recovery biased 1:2 so about two thirds of the network
    // stays up and quorums remain frequently reachable.
    if (u < 0.05) {
      const auto s =
          static_cast<net::SiteId>(rng::uniform_index(gen, topo.site_count()));
      live.set_site_up(s, false);
    } else if (u < 0.15) {
      const auto s =
          static_cast<net::SiteId>(rng::uniform_index(gen, topo.site_count()));
      live.set_site_up(s, true);
    } else if (u < 0.20) {
      const auto l =
          static_cast<net::LinkId>(rng::uniform_index(gen, topo.link_count()));
      live.set_link_up(l, false);
    } else if (u < 0.30) {
      const auto l =
          static_cast<net::LinkId>(rng::uniform_index(gen, topo.link_count()));
      live.set_link_up(l, true);
    } else if (u < 0.55) {
      db.write(tracker, origin, object, value++);
    } else if (u < 0.75) {
      // A read-modify-write transaction across two objects.
      const auto other =
          static_cast<ObjectId>(rng::uniform_index(gen, db.object_count()));
      const std::vector<Database::Op> ops{{object, false, 0},
                                          {other, true, value++}};
      committed_txns += db.execute(tracker, origin, ops).committed ? 1u : 0u;
    } else {
      const auto r = db.read(tracker, origin, object);
      if (r.granted) {
        ++granted_reads;
        EXPECT_TRUE(r.current) << "stale read of object " << object << " at step "
                               << step;
      }
    }
  }
  EXPECT_GT(granted_reads, 1'000u);
  EXPECT_GT(committed_txns, 200u);
}

} // namespace
} // namespace quora::db
