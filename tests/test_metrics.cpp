// Tests for the measurement layer: the votes-seen collector (the on-line
// estimator), the protocol meter, and the experiment driver implementing
// the paper's batch protocol.

#include <gtest/gtest.h>

#include <stdexcept>

#include "metrics/collectors.hpp"
#include "metrics/experiment.hpp"
#include "net/builders.hpp"
#include "quorum/protocols.hpp"
#include "sim/simulator.hpp"

namespace quora::metrics {
namespace {

sim::SimConfig tiny_config() {
  sim::SimConfig config;
  config.warmup_accesses = 2'000;
  config.accesses_per_batch = 20'000;
  return config;
}

TEST(VotesSeenCollector, CountsEveryAccess) {
  const net::Topology topo = net::make_ring(10);
  sim::Simulator sim(topo, tiny_config(), sim::AccessSpec{}, 1);
  VotesSeenCollector collector(topo);
  sim.add_access_observer(&collector);
  sim.run_accesses(5'000);

  EXPECT_EQ(collector.accesses(), 5'000u);
  EXPECT_EQ(collector.read_hist().total() + collector.write_hist().total(), 5'000u);
  EXPECT_EQ(collector.max_component_hist().total(), 5'000u);
}

TEST(VotesSeenCollector, PdfsAreDensities) {
  const net::Topology topo = net::make_ring(10);
  sim::Simulator sim(topo, tiny_config(), sim::AccessSpec{}, 2);
  VotesSeenCollector collector(topo);
  sim.add_access_observer(&collector);
  sim.run_accesses(20'000);

  for (const auto& pdf : {collector.read_pdf(), collector.write_pdf(),
                          collector.combined_pdf(), collector.max_component_pdf()}) {
    EXPECT_TRUE(core::is_valid_pdf(pdf, 1e-9));
    EXPECT_EQ(pdf.size(), topo.total_votes() + 1u);
  }
}

TEST(VotesSeenCollector, PerSiteRequiresOption) {
  const net::Topology topo = net::make_ring(6);
  const VotesSeenCollector plain(topo);
  EXPECT_THROW(plain.site_hist(0), std::logic_error);

  VotesSeenCollector::Options options;
  options.per_site = true;
  sim::Simulator sim(topo, tiny_config(), sim::AccessSpec{}, 3);
  VotesSeenCollector per_site(topo, options);
  sim.add_access_observer(&per_site);
  sim.run_accesses(6'000);

  std::uint64_t by_site = 0;
  for (net::SiteId s = 0; s < 6; ++s) by_site += per_site.site_hist(s).total();
  EXPECT_EQ(by_site, 6'000u);
}

TEST(VotesSeenCollector, MaxComponentDominatesPerSite) {
  const net::Topology topo = net::make_ring(8);
  sim::Simulator sim(topo, tiny_config(), sim::AccessSpec{}, 4);
  VotesSeenCollector collector(topo);
  sim.add_access_observer(&collector);
  sim.run_accesses(20'000);

  // Sample-by-sample, the largest component's votes dominate the
  // submitting site's, so the SURV tail dominates the pooled access tail
  // exactly (pooled, not read-only: the read histogram is a different
  // subsample and only dominates in expectation).
  const core::VotePdf combined = collector.combined_pdf();
  const core::VotePdf surv = collector.max_component_pdf();
  double combined_tail = 0.0;
  double surv_tail = 0.0;
  for (net::Vote q = topo.total_votes();; --q) {
    combined_tail += combined[q];
    surv_tail += surv[q];
    EXPECT_GE(surv_tail + 1e-12, combined_tail) << "q=" << q;
    if (q == 0) break;
  }
}

TEST(VotesSeenCollector, MergePools) {
  const net::Topology topo = net::make_ring(6);
  VotesSeenCollector a(topo);
  VotesSeenCollector b(topo);
  sim::Simulator sim1(topo, tiny_config(), sim::AccessSpec{}, 5, 0);
  sim::Simulator sim2(topo, tiny_config(), sim::AccessSpec{}, 5, 1);
  sim1.add_access_observer(&a);
  sim2.add_access_observer(&b);
  sim1.run_accesses(1'000);
  sim2.run_accesses(2'000);
  a.merge(b);
  EXPECT_EQ(a.accesses(), 3'000u);
  EXPECT_EQ(a.read_hist().total() + a.write_hist().total(), 3'000u);
}

TEST(ProtocolMeter, CountsGrantsByType) {
  const net::Topology topo = net::make_ring(10);
  const quorum::QuorumConsensus engine(topo, quorum::QuorumSpec{1, 10});
  sim::Simulator sim(topo, tiny_config(), sim::AccessSpec{}, 6);
  ProtocolMeter meter(static_decider(engine));
  sim.add_access_observer(&meter);
  sim.run_accesses(10'000);

  EXPECT_EQ(meter.reads() + meter.writes(), 10'000u);
  EXPECT_LE(meter.reads_granted(), meter.reads());
  EXPECT_LE(meter.writes_granted(), meter.writes());
  // ROWA: reads succeed ~96% of the time, writes almost never (T=10 all up).
  EXPECT_NEAR(meter.read_availability(), 0.96, 0.02);
  EXPECT_LT(meter.write_availability(), 0.8);
  const double combined =
      static_cast<double>(meter.reads_granted() + meter.writes_granted()) / 10'000.0;
  EXPECT_NEAR(meter.availability(), combined, 1e-12);
}

TEST(ProtocolMeter, RejectsEmptyDecider) {
  EXPECT_THROW(ProtocolMeter(ProtocolMeter::Decide{}), std::invalid_argument);
}

TEST(MeasureCurves, ValidatesPolicy) {
  const net::Topology topo = net::make_ring(6);
  MeasurePolicy policy;
  policy.alphas.clear();
  EXPECT_THROW(measure_curves(topo, tiny_config(), policy), std::invalid_argument);
  policy = MeasurePolicy{};
  policy.sampling_alpha = 0.0;
  EXPECT_THROW(measure_curves(topo, tiny_config(), policy), std::invalid_argument);
}

class MeasuredRing : public ::testing::Test {
protected:
  static const CurveResult& result() {
    static const CurveResult r = [] {
      MeasurePolicy policy;
      policy.batch.min_batches = 4;
      policy.batch.max_batches = 6;
      policy.seed = 99;
      const net::Topology topo = net::make_ring(21);
      return measure_curves(topo, tiny_config(), policy);
    }();
    return r;
  }
};

TEST_F(MeasuredRing, ShapeOfTheResult) {
  const CurveResult& r = result();
  EXPECT_EQ(r.total, 21u);
  EXPECT_EQ(r.q_values.size(), 10u);  // floor(21/2)
  EXPECT_EQ(r.alphas.size(), 5u);
  EXPECT_EQ(r.mean.size(), 5u);
  EXPECT_EQ(r.mean[0].size(), 10u);
  EXPECT_GE(r.batches, 4u);
  EXPECT_LE(r.batches, 6u);
  EXPECT_GT(r.max_half_width, 0.0);
}

TEST_F(MeasuredRing, PaperLawsHold) {
  const CurveResult& r = result();
  // alpha = 1 at q_r = 1: availability ~ site reliability 0.96.
  EXPECT_NEAR(r.mean[4][0], 0.96, 0.01);
  // alpha = 0 at q_r = 1 (q_w = T): writes need every copy; on a 21-site
  // ring that is P(all sites up, <=1 link down) ~ 0.34 — and it must be
  // the worst point of the alpha=0 curve.
  EXPECT_LT(r.mean[0][0], 0.45);
  EXPECT_LT(r.mean[0][0], r.mean[0].back());
  // Monotone structure of the extreme-alpha curves.
  for (std::size_t qi = 0; qi + 1 < r.q_values.size(); ++qi) {
    EXPECT_GE(r.mean[4][qi] + 1e-9, r.mean[4][qi + 1]);  // alpha=1 nonincreasing
    EXPECT_LE(r.mean[0][qi], r.mean[0][qi + 1] + 1e-9);  // alpha=0 nondecreasing
  }
}

TEST_F(MeasuredRing, PooledCurvesAreConsistent) {
  const CurveResult& r = result();
  EXPECT_TRUE(core::is_valid_pdf(r.r_pdf, 1e-9));
  EXPECT_TRUE(core::is_valid_pdf(r.w_pdf, 1e-9));
  EXPECT_TRUE(core::is_valid_pdf(r.surv_pdf, 1e-9));
  const auto curve = r.pooled_curve();
  // Pooled curve availability should sit near the batch-mean estimates.
  for (std::size_t a = 0; a < r.alphas.size(); ++a) {
    for (std::size_t qi = 0; qi < r.q_values.size(); ++qi) {
      EXPECT_NEAR(curve.availability(r.alphas[a], r.q_values[qi]), r.mean[a][qi],
                  0.03);
    }
  }
  // SURV curve dominates ACC pointwise (within estimation noise).
  const auto surv = r.surv_curve();
  for (std::size_t qi = 0; qi < r.q_values.size(); ++qi) {
    EXPECT_GE(surv.availability(0.5, r.q_values[qi]) + 0.02,
              curve.availability(0.5, r.q_values[qi]));
  }
}

TEST(MeasureCurves, DeterministicInSeed) {
  const net::Topology topo = net::make_ring(11);
  MeasurePolicy policy;
  policy.batch.min_batches = 3;
  policy.batch.max_batches = 3;
  policy.seed = 1234;
  const CurveResult a = measure_curves(topo, tiny_config(), policy);
  const CurveResult b = measure_curves(topo, tiny_config(), policy);
  EXPECT_EQ(a.mean, b.mean);
  EXPECT_EQ(a.r_pdf, b.r_pdf);
  policy.seed = 4321;
  const CurveResult c = measure_curves(topo, tiny_config(), policy);
  EXPECT_NE(a.mean, c.mean);
}

TEST(MeasureCurves, ParallelEqualsSerial) {
  const net::Topology topo = net::make_ring(11);
  MeasurePolicy policy;
  policy.batch.min_batches = 4;
  policy.batch.max_batches = 4;
  policy.seed = 5;
  policy.threads = 1;
  const CurveResult serial = measure_curves(topo, tiny_config(), policy);
  policy.threads = 4;
  const CurveResult parallel = measure_curves(topo, tiny_config(), policy);
  EXPECT_EQ(serial.mean, parallel.mean);
  EXPECT_EQ(serial.r_pdf, parallel.r_pdf);
  EXPECT_EQ(serial.surv_pdf, parallel.surv_pdf);
}

TEST(MeasureCurves, AdaptiveBatchesStopEarlyWhenTight) {
  const net::Topology topo = net::make_ring(11);
  MeasurePolicy policy;
  policy.batch.min_batches = 3;
  policy.batch.max_batches = 12;
  policy.batch.target_half_width = 0.5;  // trivially satisfied
  const CurveResult r = measure_curves(topo, tiny_config(), policy);
  EXPECT_EQ(r.batches, 3u);
}

} // namespace
} // namespace quora::metrics
