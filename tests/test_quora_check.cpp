// The quora-check static audit engine (io/config_audit): valid
// configurations pass, and each class of breakage is rejected with its own
// machine-readable code — so CI failures name the violated invariant, not
// just "bad config".

#include "io/config_audit.hpp"

#include <gtest/gtest.h>

#include <iterator>
#include <set>
#include <sstream>

namespace {

using quora::io::audit_code_name;
using quora::io::audit_config;
using quora::io::AuditCode;
using quora::io::AuditReport;
using quora::io::AuditSeverity;

AuditReport audit(const std::string& text) {
  std::istringstream in(text);
  return audit_config(in);
}

TEST(QuoraCheck, ValidCanonicalConfigPasses) {
  const AuditReport report = audit(
      "sites 7\n"
      "complete\n"
      "vote 0 3\n"
      "vote 1 2\n"
      "vote 2 2\n"
      "total_votes 11\n"
      "quorum 4 8\n"
      "qr_version default 2\n");
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.error_count(), 0u);
  EXPECT_EQ(report.warning_count(), 0u);
}

TEST(QuoraCheck, TopologyOnlyConfigPasses) {
  // No checker directives at all: the structural audits still run.
  const AuditReport report = audit("sites 5\nring\n");
  EXPECT_TRUE(report.ok());
}

TEST(QuoraCheck, NonIntersectingQuorumRejected) {
  const AuditReport report = audit(
      "sites 6\n"
      "complete\n"
      "quorum 2 4\n");  // 2 + 4 = 6 = T
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.has(AuditCode::kQuorumIntersection));
  EXPECT_FALSE(report.has(AuditCode::kWriteWriteIntersection));
}

TEST(QuoraCheck, SplitBrainWriteQuorumRejected) {
  const AuditReport report = audit(
      "sites 9\n"
      "complete\n"
      "quorum 6 4\n");  // condition 1 holds, 2*4 <= 9 does not
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.has(AuditCode::kWriteWriteIntersection));
  EXPECT_FALSE(report.has(AuditCode::kQuorumIntersection));
}

TEST(QuoraCheck, VoteSumMismatchRejected) {
  const AuditReport report = audit(
      "sites 5\n"
      "complete\n"
      "vote 0 3\n"
      "total_votes 5\n"  // actual sum is 7
      "quorum 3 5\n");
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.has(AuditCode::kVoteSumMismatch));
}

TEST(QuoraCheck, StaleQrVersionRejected) {
  const AuditReport report = audit(
      "sites 5\n"
      "ring\n"
      "quorum 2 4\n"
      "qr_version default 4\n"
      "qr_version 3 1\n");
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.has(AuditCode::kStaleQrVersion));
}

TEST(QuoraCheck, UniformVersionsPass) {
  const AuditReport report = audit(
      "sites 5\n"
      "ring\n"
      "quorum 2 4\n"
      "qr_version default 7\n"
      "qr_version 3 7\n");
  EXPECT_TRUE(report.ok());
}

TEST(QuoraCheck, ThreeFailureModesCarryDistinctCodes) {
  // The acceptance contract: broken intersection, vote-sum mismatch and a
  // stale QR version are not just all "rejected" — each carries its own
  // code, so CI output names the violated invariant.
  const AuditReport intersection = audit("sites 6\ncomplete\nquorum 2 4\n");
  const AuditReport votes =
      audit("sites 5\ncomplete\nvote 0 3\ntotal_votes 5\nquorum 3 5\n");
  const AuditReport stale = audit(
      "sites 5\nring\nquorum 2 4\nqr_version default 4\nqr_version 3 1\n");
  std::set<AuditCode> first_error_codes;
  for (const AuditReport* r : {&intersection, &votes, &stale}) {
    ASSERT_FALSE(r->ok());
    for (const auto& f : r->findings) {
      if (f.severity == AuditSeverity::kError) {
        first_error_codes.insert(f.code);
        break;
      }
    }
  }
  EXPECT_EQ(first_error_codes.size(), 3u);
}

TEST(QuoraCheck, StrandedVotesAndUnreachableQuorumRejected) {
  const AuditReport report = audit(
      "sites 7\n"
      "link 0 1\nlink 1 2\nlink 2 3\nlink 3 0\n"
      "link 4 5\nlink 5 6\n"
      "quorum 3 5\n");
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.has(AuditCode::kUnreachableVotes));
  EXPECT_TRUE(report.has(AuditCode::kUnreachableQuorum));
}

TEST(QuoraCheck, DominatedAssignmentIsAWarning) {
  const AuditReport report = audit(
      "sites 7\n"
      "complete\n"
      "quorum 4 6\n");  // canonical q_w would be 7 - 4 + 1 = 4
  EXPECT_TRUE(report.ok());  // still operable, just wasteful
  EXPECT_TRUE(report.has(AuditCode::kDominatedAssignment));
  EXPECT_EQ(report.warning_count(), 1u);
}

TEST(QuoraCheck, ZeroVoteWitnessAndEvenTotalAreWarnings) {
  const AuditReport report = audit(
      "sites 4\n"
      "complete\n"
      "vote 3 0\n"  // witness-style copy, total drops to 3... make it even
      "vote 0 2\n"  // total = 2 + 1 + 1 + 0 = 4
      "quorum 2 3\n");
  EXPECT_TRUE(report.ok());
  EXPECT_TRUE(report.has(AuditCode::kZeroVoteSite));
  EXPECT_TRUE(report.has(AuditCode::kEvenVoteTotal));
}

TEST(QuoraCheck, OutOfRangeQuorumRejected) {
  const AuditReport report = audit("sites 5\ncomplete\nquorum 3 9\n");
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.has(AuditCode::kQuorumRange));
}

TEST(QuoraCheck, ParseErrorsAreReportedNotThrown) {
  EXPECT_TRUE(audit("sites 5\nbogus_directive 1\n").has(AuditCode::kParseError));
  EXPECT_TRUE(audit("").has(AuditCode::kParseError));
  EXPECT_TRUE(audit("sites 5\nquorum 1\n").has(AuditCode::kParseError));
  EXPECT_TRUE(
      audit("sites 5\nring\nqr_version 9 1\n").has(AuditCode::kParseError));
}

TEST(QuoraCheck, SmallSystemCoterieCrossCheckStaysClean) {
  // For <= 20 sites the audit also enumerates the vote coteries; a valid
  // assignment must never trip the set-system checks.
  const AuditReport report = audit(
      "sites 9\n"
      "complete\n"
      "quorum 4 6\n");
  EXPECT_FALSE(report.has(AuditCode::kCoterieIntersection));
  EXPECT_FALSE(report.has(AuditCode::kCoterieMinimality));
}

TEST(QuoraCheck, ReportFormatsAreMachineReadable) {
  const AuditReport report = audit("sites 6\ncomplete\nquorum 2 4\n");
  std::ostringstream tsv;
  quora::io::write_report(tsv, report);
  EXPECT_NE(tsv.str().find("error\tquorum-intersection\t"), std::string::npos);

  std::ostringstream json;
  quora::io::write_report_json(json, report);
  EXPECT_NE(json.str().find("\"code\": \"quorum-intersection\""),
            std::string::npos);
  EXPECT_NE(json.str().find("\"severity\": \"error\""), std::string::npos);
  // Stream-based audits have no file, so no path field appears...
  EXPECT_EQ(json.str().find("\"path\""), std::string::npos);

  // ...while a named source tags every finding (the quora_check CLI
  // passes each FILE argument through and emits one combined array).
  std::ostringstream json_with_path;
  quora::io::write_report_json(json_with_path, report, "examples/c.quora");
  EXPECT_NE(json_with_path.str().find("\"path\": \"examples/c.quora\""),
            std::string::npos);
}

TEST(QuoraCheck, AuditCodeNamesAreUniqueSlugs) {
  const AuditCode all[] = {
      AuditCode::kParseError,           AuditCode::kQuorumRange,
      AuditCode::kQuorumIntersection,   AuditCode::kWriteWriteIntersection,
      AuditCode::kDominatedAssignment,  AuditCode::kVoteSumMismatch,
      AuditCode::kStaleQrVersion,       AuditCode::kUnreachableQuorum,
      AuditCode::kUnreachableVotes,     AuditCode::kZeroVoteSite,
      AuditCode::kEvenVoteTotal,        AuditCode::kCoterieIntersection,
      AuditCode::kCoterieMinimality,    AuditCode::kChaosBadSchedule,
      AuditCode::kChaosUnknownTarget,   AuditCode::kDomainConfig,
      AuditCode::kAdaptConfig,          AuditCode::kModelScopeConfig,
  };
  std::set<std::string> names;
  for (const AuditCode code : all) names.insert(audit_code_name(code));
  EXPECT_EQ(names.size(), std::size(all));
  EXPECT_STREQ(audit_code_name(AuditCode::kDomainConfig), "domain-config");
  EXPECT_STREQ(audit_code_name(AuditCode::kModelScopeConfig),
               "model-scope-config");
}

TEST(QuoraCheck, DuplicateDomainDefinitionRejected) {
  const AuditReport report = audit(
      "sites 5\n"
      "ring\n"
      "domain 0 rg0/dc0\n"
      "domain 2 rg0/dc1\n"
      "domain 2 rg1/dc0\n"
      "quorum 3 3\n");
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.has(AuditCode::kDomainConfig));
}

TEST(QuoraCheck, OverlappingDomainPathsWarn) {
  // Site 0's full path "rg0" is an ancestor of site 1's "rg0/dc1":
  // membership of "domain rg0" becomes ambiguous to a reader.
  const AuditReport report = audit(
      "sites 5\n"
      "ring\n"
      "domain 0 rg0\n"
      "domain 1 rg0/dc1\n"
      "quorum 3 3\n");
  EXPECT_TRUE(report.ok());  // a warning, not an error
  EXPECT_TRUE(report.has(AuditCode::kDomainConfig));
  EXPECT_GT(report.warning_count(), 0u);
}

TEST(QuoraCheck, ValidAdaptBlockPasses) {
  const AuditReport report = audit(
      "sites 5\n"
      "ring\n"
      "quorum 3 3\n"
      "adapt on\n"
      "adapt_epoch 50\n"
      "adapt_threshold 0.02\n"
      "adapt_dwell 2\n"
      "adapt_p 0.96\n"
      "adapt_min_write 0.1\n"
      "gossip on\n");
  EXPECT_TRUE(report.ok());
  EXPECT_FALSE(report.has(AuditCode::kAdaptConfig));
}

TEST(QuoraCheck, AdaptKnobsOutOfDomainRejected) {
  // Each bad knob carries the adapt-config code: threshold outside
  // [0, 1], dwell below 1, non-positive epoch, p outside (0, 1].
  EXPECT_TRUE(audit("sites 5\nring\nadapt on\nadapt_threshold 1.5\n")
                  .has(AuditCode::kAdaptConfig));
  EXPECT_TRUE(audit("sites 5\nring\nadapt on\nadapt_dwell 0\n")
                  .has(AuditCode::kAdaptConfig));
  EXPECT_TRUE(audit("sites 5\nring\nadapt on\nadapt_epoch 0\n")
                  .has(AuditCode::kAdaptConfig));
  EXPECT_TRUE(audit("sites 5\nring\nadapt on\nadapt_p 1.5\n")
                  .has(AuditCode::kAdaptConfig));
}

TEST(QuoraCheck, AdaptWithoutGossipRejected) {
  // Adaptation installs new assignments through the §2.2 QR protocol;
  // with gossip disabled every recommendation would be unreachable.
  const AuditReport report = audit(
      "sites 5\n"
      "ring\n"
      "quorum 3 3\n"
      "adapt on\n"
      "gossip off\n");
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.has(AuditCode::kAdaptConfig));
}

TEST(QuoraCheck, AdaptInfeasibleWriteFloorRejected) {
  // 5 single-vote sites at p = 0.5: the loosest write quorum is
  // q_w = 5 - 2 + 1 = 4, so the best write availability is
  // P[V >= 4] = 6/32 = 0.1875; a 0.9 floor can never be met, and the
  // static audit proves it before any run.
  const AuditReport infeasible = audit(
      "sites 5\n"
      "ring\n"
      "adapt on\n"
      "adapt_p 0.5\n"
      "adapt_min_write 0.9\n");
  EXPECT_FALSE(infeasible.ok());
  EXPECT_TRUE(infeasible.has(AuditCode::kAdaptConfig));
  // The same floor is fine when the sites are reliable enough.
  const AuditReport feasible = audit(
      "sites 5\n"
      "ring\n"
      "adapt on\n"
      "adapt_p 0.99\n"
      "adapt_min_write 0.9\n");
  EXPECT_FALSE(feasible.has(AuditCode::kAdaptConfig));
}

TEST(QuoraCheck, AdaptDirectiveParseErrorsAreReported) {
  EXPECT_TRUE(audit("sites 5\nring\nadapt maybe\n").has(AuditCode::kParseError));
  EXPECT_TRUE(
      audit("sites 5\nring\nadapt_threshold x\n").has(AuditCode::kParseError));
  EXPECT_TRUE(
      audit("sites 5\nring\nadapt_dwell 2.5\n").has(AuditCode::kParseError));
}

TEST(QuoraCheck, CleanDomainAnnotationsPass) {
  const AuditReport report = audit(
      "sites 4\n"
      "ring\n"
      "domain 0 rg0/dc0\n"
      "domain 1 rg0/dc1\n"
      "domain 2 rg1/dc0\n"
      "domain 3 rg1/dc1\n"
      "quorum 3 3\n");
  EXPECT_TRUE(report.ok());
  EXPECT_FALSE(report.has(AuditCode::kDomainConfig));
}

} // namespace
