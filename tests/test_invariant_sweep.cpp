// Parameterized invariant sweeps: the one-copy-serializability fuzz and
// the QR safety fuzz repeated across a family of topologies — the
// library's strongest guarantees should not depend on network shape.

#include <gtest/gtest.h>

#include <functional>
#include <string>

#include "conn/component_tracker.hpp"
#include "conn/live_network.hpp"
#include "core/reassign.hpp"
#include "net/builders.hpp"
#include "quorum/quorum_spec.hpp"
#include "quorum/replicated_store.hpp"
#include "rng/distributions.hpp"
#include "rng/xoshiro256ss.hpp"

namespace quora {
namespace {

struct TopologyCase {
  std::string label;
  std::function<net::Topology()> make;
};

class InvariantSweep : public ::testing::TestWithParam<TopologyCase> {};

/// Shared biased fail/recover step (about two thirds of components up).
void random_step(rng::Xoshiro256ss& gen, conn::LiveNetwork& live,
                 const net::Topology& topo, double u) {
  if (u < 0.08) {
    const auto s =
        static_cast<net::SiteId>(rng::uniform_index(gen, topo.site_count()));
    live.set_site_up(s, false);
  } else if (u < 0.24) {
    const auto s =
        static_cast<net::SiteId>(rng::uniform_index(gen, topo.site_count()));
    live.set_site_up(s, true);
  } else if (u < 0.32 && topo.link_count() > 0) {
    const auto l =
        static_cast<net::LinkId>(rng::uniform_index(gen, topo.link_count()));
    live.set_link_up(l, false);
  } else if (u < 0.48 && topo.link_count() > 0) {
    const auto l =
        static_cast<net::LinkId>(rng::uniform_index(gen, topo.link_count()));
    live.set_link_up(l, true);
  }
}

TEST_P(InvariantSweep, OneCopySerializability) {
  const net::Topology topo = GetParam().make();
  const net::Vote total = topo.total_votes();
  rng::Xoshiro256ss gen(0xABCDEF);

  // One representative spec per regime: small, balanced, large q_r.
  for (const net::Vote q_r :
       {net::Vote{1}, static_cast<net::Vote>(std::max(1u, total / 4)),
        quorum::max_read_quorum(total)}) {
    const quorum::QuorumSpec spec = quorum::from_read_quorum(total, q_r);
    conn::LiveNetwork live(topo);
    const conn::ComponentTracker tracker(live);
    quorum::ReplicatedStore store(topo);
    std::uint64_t value = 1;
    std::uint64_t granted = 0;

    for (int step = 0; step < 6'000; ++step) {
      const double u = gen.next_double();
      random_step(gen, live, topo, u);
      const auto origin =
          static_cast<net::SiteId>(rng::uniform_index(gen, topo.site_count()));
      if (u >= 0.48 && u < 0.75) {
        store.write(tracker, spec, origin, value++);
      } else if (u >= 0.75) {
        const auto r = store.read(tracker, spec, origin);
        if (r.granted) {
          ++granted;
          ASSERT_TRUE(r.current)
              << GetParam().label << " q_r=" << q_r << " step=" << step;
        }
      }
    }
    EXPECT_GT(granted, 50u) << GetParam().label << " q_r=" << q_r;
  }
}

TEST_P(InvariantSweep, QrSafety) {
  const net::Topology topo = GetParam().make();
  const net::Vote total = topo.total_votes();
  rng::Xoshiro256ss gen(0xFEDCBA);

  conn::LiveNetwork live(topo);
  const conn::ComponentTracker tracker(live);
  core::QuorumReassignment qr(topo, quorum::majority(total));
  std::uint64_t granted = 0;

  for (int step = 0; step < 8'000; ++step) {
    const double u = gen.next_double();
    random_step(gen, live, topo, u);
    const auto origin =
        static_cast<net::SiteId>(rng::uniform_index(gen, topo.site_count()));
    if (u >= 0.48 && u < 0.60) {
      const auto q_r = static_cast<net::Vote>(
          1 + rng::uniform_index(gen, quorum::max_read_quorum(total)));
      qr.try_install(tracker, origin, quorum::from_read_quorum(total, q_r));
    } else if (u >= 0.60) {
      const auto type =
          rng::bernoulli(gen, 0.5) ? quorum::AccessType::kRead
                                   : quorum::AccessType::kWrite;
      if (qr.request(tracker, origin, type).granted) {
        ++granted;
        ASSERT_EQ(qr.effective(tracker, origin).version, qr.latest_version())
            << GetParam().label << " step=" << step;
      }
    }
  }
  EXPECT_GT(granted, 100u) << GetParam().label;
}

INSTANTIATE_TEST_SUITE_P(
    Topologies, InvariantSweep,
    ::testing::Values(
        TopologyCase{"ring9", [] { return net::make_ring(9); }},
        TopologyCase{"chords13", [] { return net::make_ring_with_chords(13, 3); }},
        TopologyCase{"complete8", [] { return net::make_fully_connected(8); }},
        TopologyCase{"grid3x4", [] { return net::make_grid(3, 4); }},
        TopologyCase{"tree15", [] { return net::make_binary_tree(15); }},
        TopologyCase{"star10", [] { return net::make_star(10); }},
        TopologyCase{"weighted",
                     [] {
                       return net::Topology(
                           "weighted", 7,
                           {net::Link{0, 1}, net::Link{1, 2}, net::Link{2, 3},
                            net::Link{3, 4}, net::Link{4, 5}, net::Link{5, 6},
                            net::Link{6, 0}, net::Link{0, 3}},
                           std::vector<net::Vote>{4, 1, 2, 1, 3, 1, 2});
                     }},
        TopologyCase{"gnp12", [] { return net::make_erdos_renyi(12, 0.35, 5); }}),
    [](const ::testing::TestParamInfo<TopologyCase>& param_info) {
      return param_info.param.label;
    });

} // namespace
} // namespace quora
