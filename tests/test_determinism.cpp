// Golden-seed determinism: the simulation core must reproduce checked-in
// event/access transcripts byte for byte. The fixtures under
// tests/golden/ were recorded before the incremental-tracker /
// 4-ary-heap overhaul, so these tests pin the overhauled hot path to the
// original semantics: same event order, same tracker answers, same
// chaos-run decisions.
//
// To refresh a fixture intentionally (never silently), run the suite
// with QUORA_REGEN_GOLDEN=1 and commit the diff:
//
//   QUORA_REGEN_GOLDEN=1 ./tests/quora_tests --gtest_filter='GoldenDeterminism.*'

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "adapt/controller.hpp"
#include "fault/event_log.hpp"
#include "fault/fault_plan.hpp"
#include "fault/injector.hpp"
#include "msg/cluster.hpp"
#include "net/builders.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/simulator.hpp"

#ifndef QUORA_GOLDEN_DIR
#error "QUORA_GOLDEN_DIR must point at tests/golden (set by tests/CMakeLists.txt)"
#endif
#ifndef QUORA_EXAMPLES_DIR
#error "QUORA_EXAMPLES_DIR must point at examples/ (set by tests/CMakeLists.txt)"
#endif

namespace quora {
namespace {

std::string golden_path(const std::string& name) {
  return std::string(QUORA_GOLDEN_DIR) + "/" + name;
}

bool regen_requested() {
  const char* env = std::getenv("QUORA_REGEN_GOLDEN");
  return env != nullptr && *env != '\0' && std::string(env) != "0";
}

/// Compares `actual` against the checked-in fixture, or rewrites the
/// fixture when QUORA_REGEN_GOLDEN is set.
void expect_matches_golden(const std::string& name, const std::string& actual) {
  const std::string path = golden_path(name);
  if (regen_requested()) {
    std::ofstream out(path, std::ios::binary);
    ASSERT_TRUE(out) << "cannot write " << path;
    out << actual;
    SUCCEED() << "regenerated " << path;
    return;
  }
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in) << "missing fixture " << path
                  << " (run with QUORA_REGEN_GOLDEN=1 to record it)";
  std::ostringstream expected;
  expected << in.rdbuf();
  // Compare sizes first for a readable failure, then find the first
  // diverging line so the diff is actionable.
  if (expected.str() == actual) {
    SUCCEED();
    return;
  }
  std::istringstream a(expected.str()), b(actual);
  std::string la, lb;
  std::size_t line = 0;
  while (true) {
    ++line;
    const bool ga = static_cast<bool>(std::getline(a, la));
    const bool gb = static_cast<bool>(std::getline(b, lb));
    if (!ga && !gb) break;
    if (!ga || !gb || la != lb) {
      FAIL() << "transcript diverges from " << path << " at line " << line
             << "\n  golden: " << (ga ? la : "<eof>")
             << "\n  actual: " << (gb ? lb : "<eof>");
    }
  }
  FAIL() << "transcript differs from " << path << " (same lines, different bytes?)";
}

/// Records every simulator event through the two observer interfaces,
/// with tracker answers baked into each line: a divergence in event
/// order, RNG consumption, *or* component labeling shows up as a byte
/// diff.
class GoldenRecorder : public sim::AccessObserver, public sim::NetworkObserver {
public:
  void on_access(const sim::Simulator& sim, const sim::AccessEvent& ev) override {
    char buf[160];
    std::snprintf(buf, sizeof(buf), "a %.17g %u %c votes=%u max=%u\n", ev.time,
                  ev.site, ev.is_read ? 'r' : 'w',
                  sim.tracker().component_votes(ev.site),
                  sim.tracker().max_component_votes());
    transcript += buf;
  }

  void on_network_change(const sim::Simulator& sim, sim::EventKind kind,
                         std::uint32_t index) override {
    const char* name = "?";
    switch (kind) {
      case sim::EventKind::kSiteFail: name = "site-fail"; break;
      case sim::EventKind::kSiteRecover: name = "site-recover"; break;
      case sim::EventKind::kLinkFail: name = "link-fail"; break;
      case sim::EventKind::kLinkRecover: name = "link-recover"; break;
      case sim::EventKind::kAccess: name = "access"; break;
    }
    char buf[160];
    std::snprintf(buf, sizeof(buf), "n %.17g %s %u comps=%u\n", sim.now(), name,
                  index, sim.tracker().component_count());
    transcript += buf;
  }

  std::string transcript;
};

std::string record_simulator_run(const net::Topology& topo, std::uint64_t seed,
                                 std::uint64_t accesses,
                                 obs::Registry* registry = nullptr,
                                 obs::TraceRecorder* trace = nullptr) {
  sim::SimConfig config;
  sim::AccessSpec spec;
  sim::Simulator sim(topo, config, spec, seed);
  if (registry != nullptr) sim.set_metrics(registry);
  if (trace != nullptr) sim.set_trace(trace);
  GoldenRecorder recorder;
  sim.add_access_observer(&recorder);
  sim.add_network_observer(&recorder);
  sim.run_accesses(accesses);
  const auto& c = sim.counters();
  char buf[200];
  std::snprintf(buf, sizeof(buf),
                "end accesses=%llu sf=%llu sr=%llu lf=%llu lr=%llu t=%.17g\n",
                static_cast<unsigned long long>(c.accesses),
                static_cast<unsigned long long>(c.site_failures),
                static_cast<unsigned long long>(c.site_recoveries),
                static_cast<unsigned long long>(c.link_failures),
                static_cast<unsigned long long>(c.link_recoveries), sim.now());
  recorder.transcript += buf;
  return recorder.transcript;
}

TEST(GoldenDeterminism, SimulatorRing101) {
  const net::Topology topo = net::make_ring(101);
  expect_matches_golden("sim_ring101_seed42.log",
                        record_simulator_run(topo, 42, 3000));
}

TEST(GoldenDeterminism, SimulatorComplete101) {
  const net::Topology topo = net::make_fully_connected(101);
  expect_matches_golden("sim_complete101_seed7.log",
                        record_simulator_run(topo, 7, 1200));
}

// --- observability inertness ------------------------------------------
//
// The same golden fixtures, replayed with the full observability stack
// attached (trace recorder at a capacity that never overflows, metrics
// registry with every handle live). The transcripts must stay
// byte-identical: instrumentation is pure recording and may not perturb
// RNG draws, event order, or tracker answers. Skipped under
// QUORA_REGEN_GOLDEN — fixtures are always recorded unobserved.

TEST(GoldenDeterminism, SimulatorRing101Observed) {
  if (regen_requested()) GTEST_SKIP() << "fixtures regenerate unobserved";
  const net::Topology topo = net::make_ring(101);
  obs::Registry registry;
  obs::TraceRecorder trace(1 << 20);
  expect_matches_golden("sim_ring101_seed42.log",
                        record_simulator_run(topo, 42, 3000, &registry, &trace));
  if (obs::kEnabled) {
    // Vacuity guard: the run must actually have been observed.
    EXPECT_GT(trace.recorded(), 0u);
    EXPECT_EQ(trace.dropped(), 0u);
    const obs::Registry::Snapshot snap = registry.snapshot();
    ASSERT_FALSE(snap.counters.empty());
    std::uint64_t accesses = 0;
    for (const auto& [name, value] : snap.counters) {
      if (name == "sim.accesses") accesses = value;
    }
    EXPECT_EQ(accesses, 3000u);
  } else {
    EXPECT_EQ(trace.recorded(), 0u);
  }
}

TEST(GoldenDeterminism, SimulatorComplete101Observed) {
  if (regen_requested()) GTEST_SKIP() << "fixtures regenerate unobserved";
  const net::Topology topo = net::make_fully_connected(101);
  obs::Registry registry;
  obs::TraceRecorder trace(1 << 20);
  expect_matches_golden("sim_complete101_seed7.log",
                        record_simulator_run(topo, 7, 1200, &registry, &trace));
  if (obs::kEnabled) {
    EXPECT_GT(trace.recorded(), 0u);
  }
}

/// Replays a shipped chaos plan exactly the way tools/quora_chaos does
/// and returns its byte-stable event log (plus end-state tail).
/// Optional observability sinks attach the full stack to the run.
std::string record_chaos_run(const std::string& plan_name,
                             obs::Registry* registry = nullptr,
                             obs::TraceRecorder* trace = nullptr) {
  const std::string plan_path =
      std::string(QUORA_EXAMPLES_DIR) + "/chaos/" + plan_name;
  const fault::ChaosSpec spec = fault::load_chaos_file(plan_path);
  EXPECT_TRUE(spec.system.has_value());
  const net::Topology& topo = spec.system->topology;

  msg::Cluster::Params params;
  if (spec.has_quorum) {
    params.spec = spec.quorum;
  } else {
    const net::Vote majority =
        static_cast<net::Vote>(topo.total_votes() / 2 + 1);
    params.spec = quorum::QuorumSpec{majority, majority};
  }
  params.max_retries = 2;
  params.config.reliability = 0.999999;
  params.config.rho = 1e-9;

  msg::Cluster cluster(topo, params, spec.seed);
  fault::FaultInjector injector(spec.plan, spec.seed);
  fault::EventLog log;
  cluster.attach_injector(&injector);
  cluster.attach_log(&log);
  if (registry != nullptr) cluster.set_metrics(registry);
  if (trace != nullptr) cluster.set_trace(trace);
  cluster.run_until(spec.horizon);

  std::ostringstream out;
  log.write(out);
  char tail[120];
  std::snprintf(tail, sizeof(tail),
                "end decided=%zu sent=%llu retries=%llu stale=%llu\n",
                cluster.outcomes().size(),
                static_cast<unsigned long long>(cluster.messages_sent()),
                static_cast<unsigned long long>(cluster.retries()),
                static_cast<unsigned long long>(cluster.stale_rejections()));
  return out.str() + tail;
}

// Replays a shipped chaos plan exactly the way tools/quora_chaos does and
// pins its byte-stable event log — the message-level cluster (tracker
// queries, QR gossip, retry RNG) rides the same overhauled core.
TEST(GoldenDeterminism, ChaosReassignMidPartition) {
  expect_matches_golden("chaos_reassign_mid_partition.log",
                        record_chaos_run("reassign_mid_partition.chaos"));
}

// The chaos half of the inertness proof: the message-level cluster with
// tracing and metrics at full verbosity (access/round/QR/fault events,
// latency histograms, injector counters) must replay the identical log.
TEST(GoldenDeterminism, ChaosReassignMidPartitionObserved) {
  if (regen_requested()) GTEST_SKIP() << "fixtures regenerate unobserved";
  obs::Registry registry;
  obs::TraceRecorder trace(1 << 20);
  expect_matches_golden("chaos_reassign_mid_partition.log",
                        record_chaos_run("reassign_mid_partition.chaos",
                                         &registry, &trace));
  if (obs::kEnabled) {
    EXPECT_GT(trace.recorded(), 0u);
    EXPECT_EQ(trace.dropped(), 0u);
    // The registry's view must agree with the cluster's own accounting
    // (spot-checked through the access counter).
    const obs::Registry::Snapshot snap = registry.snapshot();
    std::uint64_t grants = 0, denies = 0, accesses = 0;
    for (const auto& [name, value] : snap.counters) {
      if (name == "cluster.accesses") accesses = value;
      if (name == "cluster.grants") grants = value;
      if (name.rfind("cluster.denies.", 0) == 0) denies += value;
    }
    EXPECT_GT(accesses, 0u);
    EXPECT_GT(grants, 0u);
    // Undecided accesses at the horizon keep this <= rather than ==.
    EXPECT_LE(grants + denies, accesses);
  }
}

// The chaos engine v2 surface in one golden: a geo-heterogeneous
// topology (per-link latency classes, domain annotations) under a
// scripted full-region outage. Pins the per-link latency draws, the
// domain-down/up fan-out, and the region breakdown machinery to a
// byte-stable transcript.
TEST(GoldenDeterminism, ChaosGeoRegionOutage) {
  expect_matches_golden("chaos_geo_region_outage.log",
                        record_chaos_run("geo_region_outage.chaos"));
}

// Inertness of the new per-domain metrics: attaching the full stack —
// including the per-region grant/deny counters — must not move a byte,
// and the rg0 outage must actually show up in the domain breakdown.
TEST(GoldenDeterminism, ChaosGeoRegionOutageObserved) {
  if (regen_requested()) GTEST_SKIP() << "fixtures regenerate unobserved";
  obs::Registry registry;
  obs::TraceRecorder trace(1 << 20);
  expect_matches_golden("chaos_geo_region_outage.log",
                        record_chaos_run("geo_region_outage.chaos", &registry,
                                         &trace));
  if (obs::kEnabled) {
    EXPECT_GT(trace.recorded(), 0u);
    const obs::Registry::Snapshot snap = registry.snapshot();
    std::uint64_t rg0_denies = 0, rg1_grants = 0;
    for (const auto& [name, value] : snap.counters) {
      if (name == "cluster.domain.rg0.denies") rg0_denies = value;
      if (name == "cluster.domain.rg1.grants") rg1_grants = value;
    }
    // The outage denies accesses in rg0 while rg1 keeps granting.
    EXPECT_GT(rg0_denies, 0u);
    EXPECT_GT(rg1_grants, 0u);
  }
}

/// Retry-exhaustion fixture: a drop-everything window forces every
/// phase-1 flood to evaporate, so each access burns its full retry
/// budget under pure doubling backoff (jitter 0) and resolves
/// abandoned. The transcript pins the deterministic backoff schedule:
/// each `retry` line's timestamp advances by timeout + base * 2^k.
std::string record_backoff_run(obs::Registry* registry = nullptr,
                               obs::TraceRecorder* trace = nullptr) {
  const net::Topology topo = net::make_ring(5);
  msg::Cluster::Params params;
  params.spec = quorum::QuorumSpec{3, 3};
  params.phase_timeout = 0.2;
  params.max_retries = 3;
  params.backoff_base = 0.1;
  params.backoff_jitter = 0.0;   // pure doubling: 0.1, 0.2, 0.4
  params.access_budget = 2.0;    // generous: the budget is the retry count
  params.config.reliability = 0.999999;
  params.config.rho = 1e-9;

  fault::FaultPlan plan;
  plan.drop(0.0, 120.0, 1.0);  // nothing survives the wire

  msg::Cluster cluster(topo, params, 11);
  fault::FaultInjector injector(plan, 11);
  fault::EventLog log;
  cluster.attach_injector(&injector);
  cluster.attach_log(&log);
  if (registry != nullptr) cluster.set_metrics(registry);
  if (trace != nullptr) cluster.set_trace(trace);
  cluster.run_until(100.0);

  std::ostringstream out;
  log.write(out);
  char tail[120];
  std::snprintf(tail, sizeof(tail),
                "end decided=%zu retries=%llu dropped=%llu\n",
                cluster.outcomes().size(),
                static_cast<unsigned long long>(cluster.retries()),
                static_cast<unsigned long long>(cluster.messages_dropped()));
  return out.str() + tail;
}

TEST(GoldenDeterminism, ChaosBackoffExhaustion) {
  expect_matches_golden("chaos_backoff_exhaustion.log", record_backoff_run());
}

TEST(GoldenDeterminism, ChaosBackoffExhaustionObserved) {
  if (regen_requested()) GTEST_SKIP() << "fixtures regenerate unobserved";
  obs::Registry registry;
  obs::TraceRecorder trace(1 << 20);
  expect_matches_golden("chaos_backoff_exhaustion.log",
                        record_backoff_run(&registry, &trace));
  if (obs::kEnabled) {
    const obs::Registry::Snapshot snap = registry.snapshot();
    std::uint64_t retries = 0, abandoned = 0;
    for (const auto& [name, value] : snap.counters) {
      if (name == "cluster.retries") retries = value;
      if (name == "cluster.denies.abandoned") abandoned = value;
    }
    EXPECT_GT(retries, 0u);
    EXPECT_GT(abandoned, 0u);
  }
}

/// Closed-loop adaptive fixture: a small ring starts on a read-optimized
/// assignment, then a scripted mid-run alpha drift flips the workload to
/// write-heavy. The attached controller re-estimates f(v) every epoch and
/// — after the hysteresis dwell — installs a better assignment through
/// the §2.2 QR protocol. The transcript pins the whole loop: epoch
/// timing, empirical availability read-outs, gain/streak bookkeeping,
/// and the install decision, all RNG-free and driven off the sim clock.
std::string record_adapt_drift_run(obs::Registry* registry = nullptr,
                                   obs::TraceRecorder* trace = nullptr) {
  const net::Topology topo = net::make_ring(9);
  msg::Cluster::Params params;
  params.spec = quorum::QuorumSpec{2, 8};  // read-optimized start
  params.alpha = 0.9;
  params.config.reliability = 0.96;
  params.config.rho = 1.0 / 128.0;

  fault::FaultPlan plan;
  plan.set_alpha(150.0, 0.05);  // drift: reads collapse mid-run

  adapt::AdaptiveController::Options opts;
  opts.epoch_length = 25.0;
  opts.threshold = 0.01;
  opts.dwell = 2;
  opts.min_samples = 64;
  opts.site_reliability = 0.96;
  adapt::AdaptiveController controller(topo.site_count(), topo.total_votes(),
                                       opts);

  msg::Cluster cluster(topo, params, 23);
  fault::FaultInjector injector(plan, 23);
  fault::EventLog log;
  cluster.attach_injector(&injector);
  cluster.attach_log(&log);
  cluster.attach_adaptive(&controller);
  if (registry != nullptr) cluster.set_metrics(registry);
  if (trace != nullptr) cluster.set_trace(trace);
  cluster.run_until(400.0);

  std::ostringstream out;
  log.write(out);
  char tail[160];
  std::snprintf(tail, sizeof(tail),
                "end decided=%zu epochs=%llu installs=%llu qr-installs=%zu\n",
                cluster.outcomes().size(),
                static_cast<unsigned long long>(controller.epochs()),
                static_cast<unsigned long long>(controller.installs_recommended()),
                cluster.installs().size());
  return out.str() + tail;
}

TEST(GoldenDeterminism, AdaptDriftRing9) {
  expect_matches_golden("adapt_drift_ring9.log", record_adapt_drift_run());
}

// Inertness of the adaptive loop's observability: the adapt.* counters
// and gain histograms must record without moving a byte, and the drift
// run must actually have adapted (epochs ticked, an install landed).
TEST(GoldenDeterminism, AdaptDriftRing9Observed) {
  if (regen_requested()) GTEST_SKIP() << "fixtures regenerate unobserved";
  obs::Registry registry;
  obs::TraceRecorder trace(1 << 20);
  expect_matches_golden("adapt_drift_ring9.log",
                        record_adapt_drift_run(&registry, &trace));
  if (obs::kEnabled) {
    EXPECT_GT(trace.recorded(), 0u);
    const obs::Registry::Snapshot snap = registry.snapshot();
    std::uint64_t epochs = 0, installs = 0;
    for (const auto& [name, value] : snap.counters) {
      if (name == "adapt.epochs") epochs = value;
      if (name == "adapt.installs") installs = value;
    }
    EXPECT_GT(epochs, 0u);
    EXPECT_GT(installs, 0u);
  }
}

} // namespace
} // namespace quora
