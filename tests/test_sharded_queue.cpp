// Tests for ShardedEventQueue: per-shard heap semantics and the
// deterministic (time, shard, seq) global merge, including the equivalence
// with a single EventQueue on unique-time workloads that the parallel
// stepping path relies on.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "rng/xoshiro256ss.hpp"
#include "sim/event.hpp"
#include "sim/sharded_queue.hpp"

namespace quora::sim {
namespace {

TEST(ShardedEventQueue, StartsEmpty) {
  const ShardedEventQueue q(4);
  EXPECT_EQ(q.shard_count(), 4u);
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
  for (std::uint32_t s = 0; s < 4; ++s) EXPECT_EQ(q.shard_size(s), 0u);
}

TEST(ShardedEventQueue, PopsByTimeAcrossShards) {
  ShardedEventQueue q(3);
  q.push(0, 5.0, EventKind::kAccess, 10);
  q.push(1, 1.0, EventKind::kSiteFail, 11);
  q.push(2, 3.0, EventKind::kLinkFail, 12);
  ASSERT_EQ(q.size(), 3u);

  ShardEvent e = q.pop();
  EXPECT_EQ(e.time, 1.0);
  EXPECT_EQ(e.shard, 1u);
  EXPECT_EQ(e.index, 11u);
  e = q.pop();
  EXPECT_EQ(e.time, 3.0);
  EXPECT_EQ(e.shard, 2u);
  e = q.pop();
  EXPECT_EQ(e.time, 5.0);
  EXPECT_EQ(e.shard, 0u);
  EXPECT_TRUE(q.empty());
}

TEST(ShardedEventQueue, CrossShardTimeTiesOrderByShardId) {
  ShardedEventQueue q(4);
  // Push in descending shard order so insertion order cannot masquerade
  // as the tie-break.
  q.push(3, 2.0, EventKind::kAccess, 3);
  q.push(1, 2.0, EventKind::kAccess, 1);
  q.push(2, 2.0, EventKind::kAccess, 2);
  q.push(0, 2.0, EventKind::kAccess, 0);
  for (std::uint32_t expect = 0; expect < 4; ++expect) {
    const ShardEvent e = q.pop();
    EXPECT_EQ(e.shard, expect);
    EXPECT_EQ(e.index, expect);
  }
}

TEST(ShardedEventQueue, SameShardTimeTiesAreFifo) {
  ShardedEventQueue q(2);
  for (std::uint32_t i = 0; i < 8; ++i) q.push(1, 7.0, EventKind::kAccess, i);
  std::uint64_t prev_seq = 0;
  for (std::uint32_t i = 0; i < 8; ++i) {
    const ShardEvent e = q.pop();
    EXPECT_EQ(e.index, i) << "same-time pushes must pop in insertion order";
    if (i > 0) {
      EXPECT_GT(e.seq, prev_seq);
    }
    prev_seq = e.seq;
  }
}

TEST(ShardedEventQueue, MatchesSingleHeapOnUniqueTimes) {
  // The determinism contract: with unique event times (the simulator's
  // case — exponential draws collide with probability 0), the sharded
  // merge order equals the single-heap (time, seq) order regardless of
  // which shard each event landed on.
  constexpr std::uint32_t kShards = 8;
  constexpr int kEvents = 5000;
  rng::Xoshiro256ss gen(2024);

  EventQueue single;
  ShardedEventQueue sharded(kShards);
  double t = 0.0;
  for (int i = 0; i < kEvents; ++i) {
    t += 1.0 + static_cast<double>(gen() >> 40);  // strictly increasing base
    // Interleave: scatter pushes across shards pseudo-randomly, and pop a
    // prefix mid-stream so heaps see mixed push/pop traffic.
    const double time = t + gen.next_double();
    const auto kind = static_cast<EventKind>(gen() % 5);
    const auto index = static_cast<std::uint32_t>(gen() % 1000);
    single.push(time, kind, index);
    sharded.push(static_cast<std::uint32_t>(gen() % kShards), time, kind,
                 index);
    if (i % 7 == 3) {
      const Event a = single.pop();
      const ShardEvent b = sharded.pop();
      ASSERT_EQ(a.time, b.time);
      ASSERT_EQ(a.kind, b.kind);
      ASSERT_EQ(a.index, b.index);
    }
  }
  ASSERT_EQ(single.size(), sharded.size());
  while (!single.empty()) {
    const Event a = single.pop();
    const ShardEvent b = sharded.pop();
    ASSERT_EQ(a.time, b.time);
    ASSERT_EQ(a.kind, b.kind);
    ASSERT_EQ(a.index, b.index);
  }
  EXPECT_TRUE(sharded.empty());
}

TEST(ShardedEventQueue, ShardAssignmentInvariantOnUniqueTimes) {
  // Two different shard assignments of the same event stream must drain
  // in the same global order (times unique), proving the order depends
  // on (time) alone and not on placement.
  constexpr int kEvents = 2000;
  rng::Xoshiro256ss gen(77);
  std::vector<double> times;
  times.reserve(kEvents);
  double t = 0.0;
  for (int i = 0; i < kEvents; ++i) {
    t += gen.next_double_open_zero();
    times.push_back(t);
  }

  ShardedEventQueue round_robin(5);
  ShardedEventQueue modular(3);
  for (int i = 0; i < kEvents; ++i) {
    const double time = times[static_cast<std::size_t>(i)];
    round_robin.push(static_cast<std::uint32_t>(i % 5), time,
                     EventKind::kAccess, static_cast<std::uint32_t>(i));
    modular.push(static_cast<std::uint32_t>((i * i) % 3), time,
                 EventKind::kAccess, static_cast<std::uint32_t>(i));
  }
  for (int i = 0; i < kEvents; ++i) {
    const ShardEvent a = round_robin.pop();
    const ShardEvent b = modular.pop();
    ASSERT_EQ(a.time, b.time) << "at pop " << i;
    ASSERT_EQ(a.index, b.index) << "at pop " << i;
  }
}

TEST(ShardedEventQueue, ClearReleasesAndRestartsSeqs) {
  ShardedEventQueue q(2);
  for (int i = 0; i < 100; ++i)
    q.push(static_cast<std::uint32_t>(i % 2), static_cast<double>(i),
           EventKind::kAccess, static_cast<std::uint32_t>(i));
  q.clear();
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);

  // Sequence counters restarted: a replayed push stream yields the same
  // seq values as on a fresh queue.
  q.push(0, 1.0, EventKind::kAccess, 42);
  const ShardEvent e = q.pop();
  EXPECT_EQ(e.seq, 0u);
}

TEST(ShardedEventQueue, SingleShardDegeneratesToEventQueue) {
  // shard_count == 1 must behave exactly like EventQueue, ties included.
  EventQueue single;
  ShardedEventQueue sharded(1);
  rng::Xoshiro256ss gen(5150);
  for (int i = 0; i < 1000; ++i) {
    const double time = static_cast<double>(gen() % 50);  // many exact ties
    single.push(time, EventKind::kAccess, static_cast<std::uint32_t>(i));
    sharded.push(0, time, EventKind::kAccess, static_cast<std::uint32_t>(i));
  }
  while (!single.empty()) {
    const Event a = single.pop();
    const ShardEvent b = sharded.pop();
    ASSERT_EQ(a.time, b.time);
    ASSERT_EQ(a.seq, b.seq);
    ASSERT_EQ(a.index, b.index);
  }
  EXPECT_TRUE(sharded.empty());
}

} // namespace
} // namespace quora::sim
