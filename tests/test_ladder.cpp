// Tests for the demand-driven graduation agent (our instantiation of
// Herlihy-style quorum adjustment on top of the QR protocol).

#include <gtest/gtest.h>

#include "core/reassign.hpp"
#include "dyn/ladder.hpp"
#include "net/builders.hpp"
#include "quorum/quorum_spec.hpp"
#include "sim/simulator.hpp"

namespace quora::dyn {
namespace {

TEST(LadderAgent, NoDenialsNoSteps) {
  // A fully reliable network denies nothing, so the agent never moves.
  const net::Topology topo = net::make_ring(15);
  core::QuorumReassignment qr(topo, quorum::majority(15));
  LadderAgent agent(topo, qr);

  sim::SimConfig config;
  config.reliability = 0.999999;  // effectively no failures
  config.rho = 1e-9;
  sim::AccessSpec spec;
  sim::Simulator sim(topo, config, spec, 1);
  sim.add_access_observer(&agent);
  sim.run_accesses(10'000);
  EXPECT_EQ(agent.graduations(), 0u);
  EXPECT_EQ(qr.latest_version(), 1u);
}

TEST(LadderAgent, ReadStarvationStepsTowardReadOne) {
  // Read-heavy workload on a fragmenting ring: read denials dominate, so
  // the ladder must step q_r downward.
  const net::Topology topo = net::make_ring(25);
  core::QuorumReassignment qr(topo, quorum::majority(25));
  LadderAgent agent(topo, qr);

  sim::AccessSpec spec;
  spec.alpha = 0.95;
  sim::Simulator sim(topo, sim::SimConfig{}, spec, 2);
  sim.add_access_observer(&agent);
  sim.run_accesses(60'000);

  EXPECT_GT(agent.graduations(), 0u);
  EXPECT_GT(agent.read_denials(), 0u);
  const auto eff = qr.effective(sim.tracker(), 0);
  EXPECT_LT(eff.spec.q_r, 13u);
}

TEST(LadderAgent, WriteStarvationStepsBack) {
  // Start from a read-one/write-heavy rung under a write-heavy workload:
  // write denials dominate and the agent climbs q_r back up.
  const net::Topology topo = net::make_ring_with_chords(25, 4);
  core::QuorumReassignment qr(topo, quorum::from_read_quorum(25, 2));
  LadderAgent agent(topo, qr);

  sim::AccessSpec spec;
  spec.alpha = 0.05;
  sim::Simulator sim(topo, sim::SimConfig{}, spec, 3);
  sim.add_access_observer(&agent);
  sim.run_accesses(80'000);

  EXPECT_GT(agent.graduations(), 0u);
  EXPECT_GT(agent.write_denials(), agent.read_denials());
  const auto eff = qr.effective(sim.tracker(), 0);
  EXPECT_GT(eff.spec.q_r, 2u);
}

TEST(LadderAgent, StepsRideTheQrProtocol) {
  // Every graduation increments the QR version — no out-of-band changes.
  const net::Topology topo = net::make_ring(25);
  core::QuorumReassignment qr(topo, quorum::majority(25));
  LadderAgent agent(topo, qr);

  sim::AccessSpec spec;
  spec.alpha = 0.95;
  sim::Simulator sim(topo, sim::SimConfig{}, spec, 4);
  sim.add_access_observer(&agent);
  sim.run_accesses(60'000);
  EXPECT_EQ(qr.latest_version(), 1u + agent.graduations());
}

TEST(LadderAgent, MixedDenialsHoldPosition) {
  // With alpha = .5 and a moderately partitioned ring, read and write
  // denials are comparable, so the dominance gate should mostly hold the
  // rung near the start.
  const net::Topology topo = net::make_ring(25);
  core::QuorumReassignment qr(topo, quorum::from_read_quorum(25, 8));
  LadderAgent::Options options;
  options.dominance = 0.9;  // very strict: only act on lopsided windows
  LadderAgent agent(topo, qr, options);

  sim::AccessSpec spec;
  spec.alpha = 0.5;
  sim::Simulator sim(topo, sim::SimConfig{}, spec, 5);
  sim.add_access_observer(&agent);
  sim.run_accesses(60'000);
  EXPECT_LE(agent.graduations(), 2u);
}

} // namespace
} // namespace quora::dyn
