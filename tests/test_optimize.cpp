// Tests for step 4 of the Figure-1 algorithm: the exhaustive, golden-
// section and Brent searches, the §5.4 write-constrained variant, and the
// weighted objective.

#include <gtest/gtest.h>

#include <optional>

#include "core/availability.hpp"
#include "core/component_dist.hpp"
#include "core/optimize.hpp"

namespace quora::core {
namespace {

AvailabilityCurve ring_curve(std::uint32_t n = 101) {
  return AvailabilityCurve(ring_site_pdf(n, 0.96, 0.96));
}

AvailabilityCurve dense_curve(std::uint32_t n = 101) {
  return AvailabilityCurve(fully_connected_site_pdf(n, 0.96, 0.96));
}

TEST(Exhaustive, FindsTheTrueArgmax) {
  const AvailabilityCurve curve = ring_curve();
  for (const double alpha : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    const OptResult best = optimize_exhaustive(curve, alpha);
    for (net::Vote q = 1; q <= curve.max_read_quorum(); ++q) {
      EXPECT_LE(curve.availability(alpha, q), best.value + 1e-15)
          << "alpha=" << alpha << " q=" << q;
    }
    EXPECT_EQ(best.spec.q_w, curve.total_votes() - best.spec.q_r + 1);
    EXPECT_TRUE(best.spec.valid(curve.total_votes()));
  }
}

TEST(Exhaustive, EvaluationCountIsTheWholeRange) {
  const AvailabilityCurve curve = ring_curve(21);
  const OptResult best = optimize_exhaustive(curve, 0.5);
  EXPECT_EQ(best.evaluations, curve.max_read_quorum());
}

TEST(Exhaustive, TieBreaksTowardSmallQr) {
  // A flat curve ties everywhere; the scan must return q_r = 1.
  const VotePdf flat{1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0};  // all mass at 0
  const AvailabilityCurve curve(flat);
  EXPECT_EQ(optimize_exhaustive(curve, 0.5).q_r(), 1u);
}

TEST(Exhaustive, PaperEndpointBehaviour) {
  // Ring at high read rate: optimum is read-one/write-all.
  EXPECT_EQ(optimize_exhaustive(ring_curve(), 0.75).q_r(), 1u);
  EXPECT_EQ(optimize_exhaustive(ring_curve(), 1.0).q_r(), 1u);
  // Ring all-writes: optimum is at the majority end.
  EXPECT_EQ(optimize_exhaustive(ring_curve(), 0.0).q_r(), 50u);
}

TEST(GoldenAndBrent, AgreeWithExhaustiveOnPaperCurves) {
  for (const auto& curve : {ring_curve(), dense_curve(), ring_curve(31)}) {
    for (const double alpha : {0.0, 0.25, 0.5, 0.75, 1.0}) {
      const OptResult exh = optimize_exhaustive(curve, alpha);
      const OptResult gold = optimize_golden(curve, alpha);
      const OptResult brent = optimize_brent(curve, alpha);
      // Value-level agreement (argmax may differ across plateaus).
      EXPECT_NEAR(gold.value, exh.value, 1e-9) << "alpha=" << alpha;
      EXPECT_NEAR(brent.value, exh.value, 1e-9) << "alpha=" << alpha;
    }
  }
}

TEST(GoldenAndBrent, UseFewerEvaluationsOnLargeSystems) {
  const AvailabilityCurve curve = ring_curve(101);
  const OptResult exh = optimize_exhaustive(curve, 0.6);
  const OptResult gold = optimize_golden(curve, 0.6);
  const OptResult brent = optimize_brent(curve, 0.6);
  EXPECT_EQ(exh.evaluations, 50u);
  EXPECT_LT(gold.evaluations, exh.evaluations);
  EXPECT_LT(brent.evaluations, exh.evaluations);
}

TEST(GoldenAndBrent, AlwaysProbeEndpoints) {
  // A curve whose maximum is exactly at an endpoint must be found even if
  // the interior slopes away (paper 5.3's reason for favoring endpoints).
  const AvailabilityCurve curve = ring_curve();
  EXPECT_EQ(optimize_golden(curve, 1.0).q_r(), 1u);
  EXPECT_EQ(optimize_brent(curve, 1.0).q_r(), 1u);
  EXPECT_NEAR(optimize_golden(curve, 0.0).value,
              curve.availability(0.0, 50), 1e-12);
}

TEST(WriteConstrained, MinFeasibleMatchesLinearScan) {
  const AvailabilityCurve curve = ring_curve();
  for (const double floor : {0.0001, 0.01, 0.05, 0.2}) {
    const auto fast = min_feasible_q_r(curve, floor);
    std::optional<net::Vote> slow;
    for (net::Vote q = 1; q <= curve.max_read_quorum(); ++q) {
      if (curve.write_availability(q) >= floor) {
        slow = q;
        break;
      }
    }
    ASSERT_EQ(fast.has_value(), slow.has_value()) << "floor=" << floor;
    if (fast) {
      EXPECT_EQ(*fast, *slow) << "floor=" << floor;
    }
  }
}

TEST(WriteConstrained, InfeasibleFloorReturnsNullopt) {
  const AvailabilityCurve curve = ring_curve();
  // The ring's best write availability (at q_r = 50) is far below 0.9.
  ASSERT_LT(curve.write_availability(50), 0.9);
  EXPECT_FALSE(optimize_write_constrained(curve, 0.75, 0.9).has_value());
  EXPECT_FALSE(min_feasible_q_r(curve, 0.9).has_value());
}

TEST(WriteConstrained, RespectsTheFloorAndOptimality) {
  const AvailabilityCurve curve = ring_curve();
  const double floor = 0.05;
  const auto best = optimize_write_constrained(curve, 0.75, floor);
  ASSERT_TRUE(best.has_value());
  EXPECT_GE(curve.write_availability(best->q_r()), floor);
  // Optimal among feasible: no feasible q does better.
  for (net::Vote q = 1; q <= curve.max_read_quorum(); ++q) {
    if (curve.write_availability(q) >= floor) {
      EXPECT_LE(curve.availability(0.75, q), best->value + 1e-15);
    }
  }
  // And it costs availability relative to the unconstrained optimum.
  const OptResult unconstrained = optimize_exhaustive(curve, 0.75);
  EXPECT_LE(best->value, unconstrained.value + 1e-15);
  EXPECT_GT(best->q_r(), unconstrained.q_r());
}

TEST(WriteConstrained, ZeroFloorEqualsUnconstrained) {
  const AvailabilityCurve curve = ring_curve();
  const auto constrained = optimize_write_constrained(curve, 0.6, 0.0);
  ASSERT_TRUE(constrained.has_value());
  EXPECT_NEAR(constrained->value, optimize_exhaustive(curve, 0.6).value, 1e-15);
}

TEST(WriteConstrained, MonotoneInTheFloor) {
  const AvailabilityCurve curve = ring_curve();
  // Ring write availability peaks ~0.07 (at q_r = 50), so stay below it.
  double prev = 1.0;
  for (const double floor : {0.005, 0.01, 0.03, 0.06}) {
    const auto best = optimize_write_constrained(curve, 0.75, floor);
    ASSERT_TRUE(best.has_value()) << floor;
    EXPECT_LE(best->value, prev + 1e-15);  // tighter floor, no better A
    prev = best->value;
  }
}

TEST(Weighted, OmegaOneIsPlainAvailability) {
  const AvailabilityCurve curve = ring_curve();
  const OptResult weighted = optimize_weighted(curve, 0.75, 1.0);
  const OptResult plain = optimize_exhaustive(curve, 0.75);
  EXPECT_EQ(weighted.q_r(), plain.q_r());
}

TEST(Weighted, LargeOmegaPushesTowardWrites) {
  const AvailabilityCurve curve = ring_curve();
  const OptResult light = optimize_weighted(curve, 0.75, 0.1);
  const OptResult heavy = optimize_weighted(curve, 0.75, 50.0);
  // Heavier write weight can only move q_r upward (toward easier writes).
  EXPECT_GE(heavy.q_r(), light.q_r());
  EXPECT_EQ(heavy.q_r(), 50u);
  EXPECT_EQ(light.q_r(), 1u);
}

TEST(OptResult, ReportsConsistentSpec) {
  const AvailabilityCurve curve = ring_curve(11);
  const OptResult best = optimize_exhaustive(curve, 0.4);
  EXPECT_EQ(best.q_r(), best.spec.q_r);
  EXPECT_EQ(best.q_w(), best.spec.q_w);
  EXPECT_NEAR(best.value, curve.availability(0.4, best.q_r()), 1e-15);
}

} // namespace
} // namespace quora::core
