// Cross-module integration tests: the simulator against the closed forms,
// the Figure-1 histogram decomposition against direct protocol metering,
// one-copy serializability under live quorum reassignment, and the
// section-3 bounds relating ACC, SURV and single-site reliability.

#include <gtest/gtest.h>

#include <cmath>

#include "core/availability.hpp"
#include "core/component_dist.hpp"
#include "core/optimize.hpp"
#include "core/reassign.hpp"
#include "metrics/collectors.hpp"
#include "metrics/experiment.hpp"
#include "net/builders.hpp"
#include "quorum/protocols.hpp"
#include "quorum/replicated_store.hpp"
#include "rng/distributions.hpp"
#include "sim/simulator.hpp"

namespace quora {
namespace {

TEST(Integration, MeasuredRingMatchesAnalyticCurve) {
  const std::uint32_t n = 15;
  const net::Topology topo = net::make_ring(n);
  sim::SimConfig config;
  config.warmup_accesses = 5'000;
  config.accesses_per_batch = 120'000;
  metrics::MeasurePolicy policy;
  policy.batch.min_batches = 4;
  policy.batch.max_batches = 4;
  policy.seed = 202607;

  const metrics::CurveResult measured = metrics::measure_curves(topo, config, policy);
  const core::AvailabilityCurve analytic(core::ring_site_pdf(n, 0.96, 0.96));

  for (std::size_t a = 0; a < measured.alphas.size(); ++a) {
    for (std::size_t qi = 0; qi < measured.q_values.size(); ++qi) {
      EXPECT_NEAR(measured.mean[a][qi],
                  analytic.availability(measured.alphas[a], measured.q_values[qi]),
                  0.02)
          << "alpha=" << measured.alphas[a] << " q=" << measured.q_values[qi];
    }
  }
  // And the induced optimal assignments agree in value.
  const auto measured_curve = measured.pooled_curve();
  for (const double alpha : measured.alphas) {
    const auto m = core::optimize_exhaustive(measured_curve, alpha);
    const auto t = core::optimize_exhaustive(analytic, alpha);
    EXPECT_NEAR(m.value, t.value, 0.02) << "alpha=" << alpha;
  }
}

TEST(Integration, HistogramDecompositionMatchesDirectMetering) {
  // The library's central shortcut (DESIGN.md §6): one pass collecting the
  // votes-seen histograms predicts A(alpha, q_r) for every configuration.
  // Check it against brute-force per-configuration metering on an
  // *independent* event stream.
  const net::Topology topo = net::make_ring_with_chords(21, 3);
  sim::SimConfig config;
  config.warmup_accesses = 5'000;
  config.accesses_per_batch = 150'000;

  metrics::MeasurePolicy policy;
  policy.alphas = {0.3, 0.7};
  policy.batch.min_batches = 3;
  policy.batch.max_batches = 3;
  policy.seed = 11;
  const auto predicted = metrics::measure_curves(topo, config, policy);

  for (const double alpha : policy.alphas) {
    for (const net::Vote q_r : {net::Vote{1}, net::Vote{5}, net::Vote{10}}) {
      const quorum::QuorumConsensus engine(
          topo, quorum::from_read_quorum(topo.total_votes(), q_r));
      sim::AccessSpec spec;
      spec.alpha = alpha;
      sim::Simulator sim(topo, config, spec, /*seed=*/4711, /*stream=*/q_r);
      sim.run_accesses(config.warmup_accesses);
      metrics::ProtocolMeter meter(metrics::static_decider(engine));
      sim.add_access_observer(&meter);
      sim.run_accesses(config.accesses_per_batch);

      const std::size_t ai = alpha == 0.3 ? 0 : 1;
      // Two independent streams, each with ~1% estimation error.
      const double predicted_a = predicted.mean[ai][q_r - 1];
      EXPECT_NEAR(meter.availability(), predicted_a, 0.03)
          << "alpha=" << alpha << " q_r=" << q_r;
    }
  }
}

TEST(Integration, OneCopySerializabilityUnderLiveReassignment) {
  // The replicated store driven through QR's *changing* effective
  // assignments: even as quorum specs are swapped mid-history, every
  // granted read must return the latest committed version. This requires
  // install_and_sync (assignment install + data synchronization); the
  // companion test below shows a bare install breaks 1SR.
  rng::Xoshiro256ss gen(606);
  const net::Topology topo = net::make_ring_with_chords(13, 3);
  const net::Vote total = topo.total_votes();

  conn::LiveNetwork live(topo);
  const conn::ComponentTracker tracker(live);
  core::QuorumReassignment qr(topo, quorum::majority(total));
  quorum::ReplicatedStore store(topo);
  std::uint64_t value = 1'000;
  std::uint64_t granted_reads = 0;
  std::uint64_t installs = 0;

  for (int step = 0; step < 50'000; ++step) {
    const double u = gen.next_double();
    if (u < 0.08) {
      const auto s = static_cast<net::SiteId>(
          rng::uniform_index(gen, topo.site_count()));
      live.set_site_up(s, false);
    } else if (u < 0.24) {
      const auto s = static_cast<net::SiteId>(
          rng::uniform_index(gen, topo.site_count()));
      live.set_site_up(s, true);
    } else if (u < 0.32) {
      const auto l = static_cast<net::LinkId>(
          rng::uniform_index(gen, topo.link_count()));
      live.set_link_up(l, false);
    } else if (u < 0.48) {
      const auto l = static_cast<net::LinkId>(
          rng::uniform_index(gen, topo.link_count()));
      live.set_link_up(l, true);
    } else if (u < 0.58) {
      const auto q_r = static_cast<net::Vote>(
          1 + rng::uniform_index(gen, quorum::max_read_quorum(total)));
      const auto origin = static_cast<net::SiteId>(
          rng::uniform_index(gen, topo.site_count()));
      installs += core::install_and_sync(qr, store, tracker, origin,
                                         quorum::from_read_quorum(total, q_r));
    } else if (u < 0.80) {
      const auto origin = static_cast<net::SiteId>(
          rng::uniform_index(gen, topo.site_count()));
      store.write(tracker, qr.effective(tracker, origin).spec, origin, value++);
    } else {
      const auto origin = static_cast<net::SiteId>(
          rng::uniform_index(gen, topo.site_count()));
      const auto r = store.read(tracker, qr.effective(tracker, origin).spec, origin);
      if (r.granted) {
        ++granted_reads;
        EXPECT_TRUE(r.current)
            << "stale read at step " << step << ": saw " << r.version
            << ", latest " << store.committed_version();
      }
    }
  }
  EXPECT_GT(granted_reads, 2'000u);
  // Reassignment is self-limiting: once a high-q_w assignment lands,
  // further installs need that many votes connected at once.
  EXPECT_GT(installs, 5u);
}

TEST(Integration, BareInstallWithoutDataSyncBreaksOneCopySerializability) {
  // A deterministic witness for the anomaly the sync discipline prevents.
  // T = 10, initial assignment {5, 6}:
  //
  //   1. write v1 everywhere; partition into {1..4} and {5..9,0}; write
  //      v2 on the 6-vote side (the 4-vote side keeps v1);
  //   2. install read-one/write-all {1, 10} from the 6-vote side WITHOUT
  //      syncing data — legal for QR (6 >= q_w(old) = 6);
  //   3. heal and propagate assignments (but, crucially, not data), then
  //      isolate {2,3}: they are assignment-aware yet hold only v1, and
  //      the new q_r = 1 grants their read — which returns stale data.
  const net::Topology topo = net::make_ring(10);
  conn::LiveNetwork live(topo);
  const conn::ComponentTracker tracker(live);
  core::QuorumReassignment qr(topo, quorum::QuorumSpec{5, 6});
  quorum::ReplicatedStore store(topo);

  ASSERT_TRUE(store.write(tracker, qr.effective(tracker, 0).spec, 0, 1).granted);
  live.set_link_up(0, false);   // cut {0,1}
  live.set_link_up(4, false);   // cut {4,5}: {1..4} vs {5..9,0}
  ASSERT_TRUE(store.write(tracker, qr.effective(tracker, 7).spec, 7, 2).granted);

  // Bare install (deliberately NOT install_and_sync).
  ASSERT_TRUE(qr.try_install(tracker, 7, quorum::QuorumSpec{1, 10}));

  // Heal; propagate assignments (merge-time state update) but the *data*
  // on {1..4} is still version 1.
  live.set_link_up(0, true);
  live.set_link_up(4, true);
  qr.propagate(tracker);

  // Isolate {2,3}: both are assignment-aware (version 2 via propagate)
  // but hold stale data; under the new q_r = 1 their read is granted...
  live.set_link_up(1, false);  // cut {1,2}
  live.set_link_up(3, false);  // cut {3,4}
  const auto stale = store.read(tracker, qr.effective(tracker, 2).spec, 2);
  ASSERT_TRUE(stale.granted);
  EXPECT_FALSE(stale.current);  // ...and returns version 1: the anomaly.
  EXPECT_EQ(stale.version, 1u);

  // The same history with the data sync cannot go stale: rerun with
  // refresh at install time.
  quorum::ReplicatedStore synced(topo);
  live.reset_all_up();
  core::QuorumReassignment qr2(topo, quorum::QuorumSpec{5, 6});
  ASSERT_TRUE(synced.write(tracker, qr2.effective(tracker, 0).spec, 0, 1).granted);
  live.set_link_up(0, false);
  live.set_link_up(4, false);
  ASSERT_TRUE(synced.write(tracker, qr2.effective(tracker, 7).spec, 7, 2).granted);
  ASSERT_TRUE(core::install_and_sync(qr2, synced, tracker, 7,
                                     quorum::QuorumSpec{1, 10}));
  live.set_link_up(0, true);
  live.set_link_up(4, true);
  // Merge-time propagation must carry the data with the assignment —
  // propagate_and_sync rather than bare propagate.
  core::propagate_and_sync(qr2, synced, tracker);
  live.set_link_up(1, false);
  live.set_link_up(3, false);
  const auto fresh = synced.read(tracker, qr2.effective(tracker, 2).spec, 2);
  ASSERT_TRUE(fresh.granted);
  EXPECT_TRUE(fresh.current);
  EXPECT_EQ(fresh.version, 2u);
}

TEST(Integration, SectionThreeBounds) {
  // §3: single-site reliability (0.96) is an upper bound for ACC — the
  // submitting site must at least be up — and SURV at threshold 1 is
  // essentially P(any site up) ~ 1.
  const net::Topology topo = net::make_ring_with_chords(21, 4);
  sim::SimConfig config;
  config.warmup_accesses = 5'000;
  config.accesses_per_batch = 100'000;
  metrics::MeasurePolicy policy;
  policy.batch.min_batches = 3;
  policy.batch.max_batches = 3;
  const auto curves = metrics::measure_curves(topo, config, policy);
  const auto acc = curves.pooled_curve();
  const auto surv = curves.surv_curve();

  for (const double alpha : curves.alphas) {
    for (const net::Vote q : curves.q_values) {
      EXPECT_LE(acc.availability(alpha, q), 0.96 + 0.01)
          << "alpha=" << alpha << " q=" << q;
    }
  }
  EXPECT_GT(surv.availability(1.0, 1), 0.99);
}

TEST(Integration, WriteConstrainedWalkthroughEndToEnd) {
  // The §5.4 pipeline on real measured data: measure, find the
  // unconstrained optimum, constrain, verify the constrained assignment
  // actually delivers the promised write availability when metered
  // directly.
  const net::Topology topo = net::make_ring_with_chords(21, 1);
  sim::SimConfig config;
  config.warmup_accesses = 5'000;
  config.accesses_per_batch = 120'000;
  metrics::MeasurePolicy policy;
  policy.alphas = {0.75};
  policy.batch.min_batches = 3;
  policy.batch.max_batches = 3;
  const auto curves = metrics::measure_curves(topo, config, policy);
  const auto curve = curves.pooled_curve();

  const double floor = 0.3;
  const auto best = core::optimize_write_constrained(curve, 0.75, floor);
  ASSERT_TRUE(best.has_value());

  const quorum::QuorumConsensus engine(topo, best->spec);
  sim::AccessSpec spec;
  spec.alpha = 0.75;
  sim::Simulator sim(topo, config, spec, /*seed=*/31337);
  sim.run_accesses(config.warmup_accesses);
  metrics::ProtocolMeter meter(metrics::static_decider(engine));
  sim.add_access_observer(&meter);
  sim.run_accesses(config.accesses_per_batch);

  EXPECT_GE(meter.write_availability(), floor - 0.03);
  EXPECT_NEAR(meter.availability(), best->value, 0.02);
}

} // namespace
} // namespace quora
