// Tests for the dynamic network view and the component tracker, including
// a randomized cross-check against a naive reference implementation.

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "conn/component_tracker.hpp"
#include "conn/live_network.hpp"
#include "net/builders.hpp"
#include "rng/distributions.hpp"
#include "rng/xoshiro256ss.hpp"

namespace quora::conn {
namespace {

TEST(LiveNetwork, StartsAllUp) {
  const net::Topology topo = net::make_ring(5);
  const LiveNetwork live(topo);
  EXPECT_EQ(live.up_site_count(), 5u);
  EXPECT_EQ(live.up_link_count(), 5u);
  for (net::SiteId s = 0; s < 5; ++s) EXPECT_TRUE(live.is_site_up(s));
  for (net::LinkId l = 0; l < 5; ++l) EXPECT_TRUE(live.is_link_up(l));
}

TEST(LiveNetwork, VersionBumpsOnlyOnChange) {
  const net::Topology topo = net::make_ring(5);
  LiveNetwork live(topo);
  const std::uint64_t v0 = live.version();
  EXPECT_FALSE(live.set_site_up(0, true));  // no-op
  EXPECT_EQ(live.version(), v0);
  EXPECT_TRUE(live.set_site_up(0, false));
  EXPECT_EQ(live.version(), v0 + 1);
  EXPECT_FALSE(live.set_site_up(0, false));  // no-op again
  EXPECT_EQ(live.version(), v0 + 1);
  EXPECT_TRUE(live.set_link_up(2, false));
  EXPECT_EQ(live.version(), v0 + 2);
}

TEST(LiveNetwork, ResetAllUpBumpsVersionIffStateChanged) {
  const net::Topology topo = net::make_ring(5);
  LiveNetwork live(topo);
  // Everything is already up: reset must be a no-op for the version, or
  // downstream caches (ComponentTracker) would rebuild for nothing.
  const std::uint64_t v0 = live.version();
  live.reset_all_up();
  EXPECT_EQ(live.version(), v0);
  live.reset_all_up();
  EXPECT_EQ(live.version(), v0);

  // Any real change must bump it exactly once per reset, no matter how
  // many components it restores.
  live.set_site_up(1, false);
  live.set_site_up(3, false);
  live.set_link_up(2, false);
  const std::uint64_t v1 = live.version();
  live.reset_all_up();
  EXPECT_EQ(live.version(), v1 + 1);
  live.reset_all_up();  // idempotent: back to the no-op case
  EXPECT_EQ(live.version(), v1 + 1);
}

TEST(ComponentTracker, CacheRefreshesAcrossResetAllUp) {
  const net::Topology topo = net::make_ring(6);
  LiveNetwork live(topo);
  const ComponentTracker tracker(live);
  live.set_site_up(2, false);
  live.set_site_up(5, false);
  EXPECT_EQ(tracker.component_count(), 2u);
  live.reset_all_up();
  EXPECT_EQ(tracker.component_count(), 1u);
  EXPECT_EQ(tracker.component_votes(0), topo.total_votes());
}

TEST(LiveNetwork, CountsTrackState) {
  const net::Topology topo = net::make_ring(5);
  LiveNetwork live(topo);
  live.set_site_up(1, false);
  live.set_site_up(3, false);
  live.set_link_up(0, false);
  EXPECT_EQ(live.up_site_count(), 3u);
  EXPECT_EQ(live.up_link_count(), 4u);
  live.reset_all_up();
  EXPECT_EQ(live.up_site_count(), 5u);
  EXPECT_EQ(live.up_link_count(), 5u);
}

TEST(LiveNetwork, LinkOperationalNeedsEndpoints) {
  const net::Topology topo = net::make_ring(4);
  LiveNetwork live(topo);
  EXPECT_TRUE(live.link_operational(0));  // link {0,1}
  live.set_site_up(1, false);
  EXPECT_FALSE(live.link_operational(0));
  EXPECT_TRUE(live.is_link_up(0));  // the link itself is still up
}

TEST(ComponentTracker, AllUpIsOneComponent) {
  const net::Topology topo = net::make_ring(8);
  LiveNetwork live(topo);
  const ComponentTracker tracker(live);
  EXPECT_EQ(tracker.component_count(), 1u);
  EXPECT_EQ(tracker.component_votes(3), 8u);
  EXPECT_EQ(tracker.component_size(3), 8u);
  EXPECT_EQ(tracker.max_component_votes(), 8u);
  EXPECT_TRUE(tracker.connected(0, 7));
}

TEST(ComponentTracker, DownSiteHasNoComponent) {
  const net::Topology topo = net::make_ring(5);
  LiveNetwork live(topo);
  const ComponentTracker tracker(live);
  live.set_site_up(2, false);
  EXPECT_EQ(tracker.component_of(2), kNoComponent);
  EXPECT_EQ(tracker.component_votes(2), 0u);
  EXPECT_EQ(tracker.component_size(2), 0u);
  EXPECT_FALSE(tracker.connected(2, 0));
  // The others form a chain (the ring is cut at the dead site).
  EXPECT_EQ(tracker.component_count(), 1u);
  EXPECT_EQ(tracker.component_votes(0), 4u);
}

TEST(ComponentTracker, TwoLinkCutsSplitARing) {
  const net::Topology topo = net::make_ring(6);  // links i -- i+1
  LiveNetwork live(topo);
  const ComponentTracker tracker(live);
  live.set_link_up(0, false);  // cut {0,1}
  EXPECT_EQ(tracker.component_count(), 1u);  // one cut: still connected
  live.set_link_up(3, false);  // cut {3,4}
  EXPECT_EQ(tracker.component_count(), 2u);
  EXPECT_TRUE(tracker.connected(1, 3));
  EXPECT_TRUE(tracker.connected(4, 0));
  EXPECT_FALSE(tracker.connected(1, 4));
  EXPECT_EQ(tracker.component_votes(1), 3u);  // {1,2,3}
  EXPECT_EQ(tracker.component_votes(4), 3u);  // {4,5,0}
}

TEST(ComponentTracker, VotesUseAssignment) {
  const net::Topology topo("t", 4, {net::Link{0, 1}, net::Link{2, 3}},
                           std::vector<net::Vote>{5, 1, 2, 0});
  LiveNetwork live(topo);
  const ComponentTracker tracker(live);
  EXPECT_EQ(tracker.component_count(), 2u);
  EXPECT_EQ(tracker.component_votes(0), 6u);
  EXPECT_EQ(tracker.component_votes(3), 2u);
  EXPECT_EQ(tracker.max_component_votes(), 6u);
}

TEST(ComponentTracker, MembersMatchLabels) {
  const net::Topology topo = net::make_ring(6);
  LiveNetwork live(topo);
  const ComponentTracker tracker(live);
  live.set_link_up(1, false);
  live.set_link_up(4, false);
  for (net::SiteId s = 0; s < 6; ++s) {
    const std::int32_t comp = tracker.component_of(s);
    ASSERT_NE(comp, kNoComponent);
    const auto members = tracker.members(comp);
    EXPECT_NE(std::find(members.begin(), members.end(), s), members.end());
    EXPECT_EQ(members.size(), tracker.component_size(s));
  }
}

TEST(ComponentTracker, AllSitesDown) {
  const net::Topology topo = net::make_ring(4);
  LiveNetwork live(topo);
  const ComponentTracker tracker(live);
  for (net::SiteId s = 0; s < 4; ++s) live.set_site_up(s, false);
  EXPECT_EQ(tracker.component_count(), 0u);
  EXPECT_EQ(tracker.max_component_votes(), 0u);
}

TEST(ComponentTracker, RecoveryMergesComponents) {
  const net::Topology topo = net::make_ring(6);
  LiveNetwork live(topo);
  const ComponentTracker tracker(live);
  live.set_site_up(0, false);
  live.set_site_up(3, false);
  EXPECT_EQ(tracker.component_count(), 2u);
  live.set_site_up(0, true);
  EXPECT_EQ(tracker.component_count(), 1u);
  EXPECT_EQ(tracker.component_votes(1), 5u);
}

TEST(ComponentTracker, RecoveriesAbsorbWithoutRebuild) {
  const net::Topology topo = net::make_ring(8);
  LiveNetwork live(topo);
  const ComponentTracker tracker(live);
  const auto base = tracker.stats();  // construction performs one rebuild

  live.set_link_up(0, false);
  live.set_link_up(4, false);
  EXPECT_EQ(tracker.component_count(), 2u);  // failures: one lazy rebuild
  EXPECT_EQ(tracker.stats().full_rebuilds, base.full_rebuilds + 1);

  // Link recoveries merge via union-find; the rebuild count must not move.
  live.set_link_up(0, true);
  EXPECT_EQ(tracker.component_count(), 1u);
  live.set_link_up(4, true);
  EXPECT_EQ(tracker.component_count(), 1u);
  EXPECT_EQ(tracker.component_votes(0), 8u);
  EXPECT_EQ(tracker.max_component_votes(), 8u);
  EXPECT_EQ(tracker.stats().full_rebuilds, base.full_rebuilds + 1);
  EXPECT_EQ(tracker.stats().incremental_applies, base.incremental_applies + 2);
}

TEST(ComponentTracker, SiteRecoveryMergesIncrementally) {
  const net::Topology topo = net::make_ring(6);
  LiveNetwork live(topo);
  const ComponentTracker tracker(live);
  live.set_site_up(0, false);
  live.set_site_up(3, false);
  EXPECT_EQ(tracker.component_count(), 2u);  // chains {1,2} and {4,5}
  const auto after_fail = tracker.stats();

  // Site 0 coming back bridges the two chains through links {5,0},{0,1}.
  live.set_site_up(0, true);
  EXPECT_EQ(tracker.component_count(), 1u);
  EXPECT_EQ(tracker.component_votes(1), 5u);
  EXPECT_TRUE(tracker.connected(2, 4));
  EXPECT_EQ(tracker.stats().full_rebuilds, after_fail.full_rebuilds);
  EXPECT_EQ(tracker.stats().incremental_applies,
            after_fail.incremental_applies + 1);

  // Structural queries after an incremental merge force a compaction and
  // must agree with the scalar ones.
  const std::int32_t comp = tracker.component_of(1);
  ASSERT_NE(comp, kNoComponent);
  EXPECT_EQ(tracker.members(comp).size(), 5u);
  EXPECT_GT(tracker.stats().compactions, after_fail.compactions);
}

TEST(ComponentTracker, MixedDeltaBatchRebuildsOnce) {
  const net::Topology topo = net::make_ring(10);
  LiveNetwork live(topo);
  const ComponentTracker tracker(live);
  const auto base = tracker.stats();

  // A burst of changes between queries — including failures — costs
  // exactly one rebuild when the next query lands, however long the burst.
  live.set_link_up(0, false);
  live.set_link_up(0, true);
  live.set_site_up(2, false);
  live.set_site_up(7, false);
  live.set_site_up(2, true);
  live.set_link_up(5, false);
  EXPECT_EQ(tracker.component_count(), 2u);  // site 7 down + link 5 cut
  EXPECT_EQ(tracker.stats().full_rebuilds, base.full_rebuilds + 1);
}

/// Brute-force reference: label components by repeated BFS over a fresh
/// adjacency scan.
std::vector<int> reference_labels(const LiveNetwork& live) {
  const net::Topology& topo = live.topology();
  std::vector<int> label(topo.site_count(), -1);
  int next = 0;
  for (net::SiteId root = 0; root < topo.site_count(); ++root) {
    if (!live.is_site_up(root) || label[root] != -1) continue;
    std::vector<net::SiteId> stack{root};
    label[root] = next;
    while (!stack.empty()) {
      const net::SiteId s = stack.back();
      stack.pop_back();
      for (net::LinkId l = 0; l < topo.link_count(); ++l) {
        const net::Link& e = topo.link(l);
        if (!live.link_operational(l)) continue;
        net::SiteId other;
        if (e.a == s) {
          other = e.b;
        } else if (e.b == s) {
          other = e.a;
        } else {
          continue;
        }
        if (label[other] == -1) {
          label[other] = next;
          stack.push_back(other);
        }
      }
    }
    ++next;
  }
  return label;
}

TEST(ComponentTracker, RandomizedAgreesWithReference) {
  const net::Topology topo = net::make_erdos_renyi(14, 0.25, 99);
  LiveNetwork live(topo);
  const ComponentTracker tracker(live);
  rng::Xoshiro256ss gen(4242);

  for (int step = 0; step < 2000; ++step) {
    // Random toggle of a random site or link.
    if (rng::bernoulli(gen, 0.5)) {
      const auto s =
          static_cast<net::SiteId>(rng::uniform_index(gen, topo.site_count()));
      live.set_site_up(s, !live.is_site_up(s));
    } else if (topo.link_count() > 0) {
      const auto l =
          static_cast<net::LinkId>(rng::uniform_index(gen, topo.link_count()));
      live.set_link_up(l, !live.is_link_up(l));
    }

    const std::vector<int> ref = reference_labels(live);
    // Same partition (labels may be permuted): check pairwise equivalence
    // through a bijection map, and per-site vote/size totals.
    std::map<int, std::int32_t> forward;
    std::map<std::int32_t, int> backward;
    for (net::SiteId s = 0; s < topo.site_count(); ++s) {
      const std::int32_t mine = tracker.component_of(s);
      ASSERT_EQ(ref[s] == -1, mine == kNoComponent) << "site " << s;
      if (ref[s] == -1) continue;
      auto [fit, finserted] = forward.try_emplace(ref[s], mine);
      EXPECT_EQ(fit->second, mine);
      auto [bit, binserted] = backward.try_emplace(mine, ref[s]);
      EXPECT_EQ(bit->second, ref[s]);

      // Vote total = component size here (uniform single votes).
      std::uint32_t ref_size = 0;
      for (net::SiteId x = 0; x < topo.site_count(); ++x) {
        ref_size += ref[x] == ref[s] ? 1u : 0u;
      }
      EXPECT_EQ(tracker.component_size(s), ref_size);
      EXPECT_EQ(tracker.component_votes(s), ref_size);
    }
  }
}

} // namespace
} // namespace quora::conn
