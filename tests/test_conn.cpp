// Tests for the dynamic network view and the component tracker, including
// a randomized cross-check against a naive reference implementation.

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <map>
#include <stdexcept>
#include <vector>

#include "conn/bitwords.hpp"
#include "conn/component_tracker.hpp"
#include "conn/live_network.hpp"
#include "net/builders.hpp"
#include "rng/distributions.hpp"
#include "rng/xoshiro256ss.hpp"

namespace quora::conn {
namespace {

TEST(LiveNetwork, StartsAllUp) {
  const net::Topology topo = net::make_ring(5);
  const LiveNetwork live(topo);
  EXPECT_EQ(live.up_site_count(), 5u);
  EXPECT_EQ(live.up_link_count(), 5u);
  for (net::SiteId s = 0; s < 5; ++s) EXPECT_TRUE(live.is_site_up(s));
  for (net::LinkId l = 0; l < 5; ++l) EXPECT_TRUE(live.is_link_up(l));
}

TEST(LiveNetwork, VersionBumpsOnlyOnChange) {
  const net::Topology topo = net::make_ring(5);
  LiveNetwork live(topo);
  const std::uint64_t v0 = live.version();
  EXPECT_FALSE(live.set_site_up(0, true));  // no-op
  EXPECT_EQ(live.version(), v0);
  EXPECT_TRUE(live.set_site_up(0, false));
  EXPECT_EQ(live.version(), v0 + 1);
  EXPECT_FALSE(live.set_site_up(0, false));  // no-op again
  EXPECT_EQ(live.version(), v0 + 1);
  EXPECT_TRUE(live.set_link_up(2, false));
  EXPECT_EQ(live.version(), v0 + 2);
}

TEST(LiveNetwork, ResetAllUpBumpsVersionIffStateChanged) {
  const net::Topology topo = net::make_ring(5);
  LiveNetwork live(topo);
  // Everything is already up: reset must be a no-op for the version, or
  // downstream caches (ComponentTracker) would rebuild for nothing.
  const std::uint64_t v0 = live.version();
  live.reset_all_up();
  EXPECT_EQ(live.version(), v0);
  live.reset_all_up();
  EXPECT_EQ(live.version(), v0);

  // Any real change must bump it exactly once per reset, no matter how
  // many components it restores.
  live.set_site_up(1, false);
  live.set_site_up(3, false);
  live.set_link_up(2, false);
  const std::uint64_t v1 = live.version();
  live.reset_all_up();
  EXPECT_EQ(live.version(), v1 + 1);
  live.reset_all_up();  // idempotent: back to the no-op case
  EXPECT_EQ(live.version(), v1 + 1);
}

TEST(ComponentTracker, CacheRefreshesAcrossResetAllUp) {
  const net::Topology topo = net::make_ring(6);
  LiveNetwork live(topo);
  const ComponentTracker tracker(live);
  live.set_site_up(2, false);
  live.set_site_up(5, false);
  EXPECT_EQ(tracker.component_count(), 2u);
  live.reset_all_up();
  EXPECT_EQ(tracker.component_count(), 1u);
  EXPECT_EQ(tracker.component_votes(0), topo.total_votes());
}

TEST(LiveNetwork, CountsTrackState) {
  const net::Topology topo = net::make_ring(5);
  LiveNetwork live(topo);
  live.set_site_up(1, false);
  live.set_site_up(3, false);
  live.set_link_up(0, false);
  EXPECT_EQ(live.up_site_count(), 3u);
  EXPECT_EQ(live.up_link_count(), 4u);
  live.reset_all_up();
  EXPECT_EQ(live.up_site_count(), 5u);
  EXPECT_EQ(live.up_link_count(), 5u);
}

TEST(LiveNetwork, LinkOperationalNeedsEndpoints) {
  const net::Topology topo = net::make_ring(4);
  LiveNetwork live(topo);
  EXPECT_TRUE(live.link_operational(0));  // link {0,1}
  live.set_site_up(1, false);
  EXPECT_FALSE(live.link_operational(0));
  EXPECT_TRUE(live.is_link_up(0));  // the link itself is still up
}

TEST(ComponentTracker, AllUpIsOneComponent) {
  const net::Topology topo = net::make_ring(8);
  LiveNetwork live(topo);
  const ComponentTracker tracker(live);
  EXPECT_EQ(tracker.component_count(), 1u);
  EXPECT_EQ(tracker.component_votes(3), 8u);
  EXPECT_EQ(tracker.component_size(3), 8u);
  EXPECT_EQ(tracker.max_component_votes(), 8u);
  EXPECT_TRUE(tracker.connected(0, 7));
}

TEST(ComponentTracker, DownSiteHasNoComponent) {
  const net::Topology topo = net::make_ring(5);
  LiveNetwork live(topo);
  const ComponentTracker tracker(live);
  live.set_site_up(2, false);
  EXPECT_EQ(tracker.component_of(2), kNoComponent);
  EXPECT_EQ(tracker.component_votes(2), 0u);
  EXPECT_EQ(tracker.component_size(2), 0u);
  EXPECT_FALSE(tracker.connected(2, 0));
  // The others form a chain (the ring is cut at the dead site).
  EXPECT_EQ(tracker.component_count(), 1u);
  EXPECT_EQ(tracker.component_votes(0), 4u);
}

TEST(ComponentTracker, TwoLinkCutsSplitARing) {
  const net::Topology topo = net::make_ring(6);  // links i -- i+1
  LiveNetwork live(topo);
  const ComponentTracker tracker(live);
  live.set_link_up(0, false);  // cut {0,1}
  EXPECT_EQ(tracker.component_count(), 1u);  // one cut: still connected
  live.set_link_up(3, false);  // cut {3,4}
  EXPECT_EQ(tracker.component_count(), 2u);
  EXPECT_TRUE(tracker.connected(1, 3));
  EXPECT_TRUE(tracker.connected(4, 0));
  EXPECT_FALSE(tracker.connected(1, 4));
  EXPECT_EQ(tracker.component_votes(1), 3u);  // {1,2,3}
  EXPECT_EQ(tracker.component_votes(4), 3u);  // {4,5,0}
}

TEST(ComponentTracker, VotesUseAssignment) {
  const net::Topology topo("t", 4, {net::Link{0, 1}, net::Link{2, 3}},
                           std::vector<net::Vote>{5, 1, 2, 0});
  LiveNetwork live(topo);
  const ComponentTracker tracker(live);
  EXPECT_EQ(tracker.component_count(), 2u);
  EXPECT_EQ(tracker.component_votes(0), 6u);
  EXPECT_EQ(tracker.component_votes(3), 2u);
  EXPECT_EQ(tracker.max_component_votes(), 6u);
}

TEST(ComponentTracker, MembersMatchLabels) {
  const net::Topology topo = net::make_ring(6);
  LiveNetwork live(topo);
  const ComponentTracker tracker(live);
  live.set_link_up(1, false);
  live.set_link_up(4, false);
  for (net::SiteId s = 0; s < 6; ++s) {
    const std::int32_t comp = tracker.component_of(s);
    ASSERT_NE(comp, kNoComponent);
    const auto members = tracker.members(comp);
    EXPECT_NE(std::find(members.begin(), members.end(), s), members.end());
    EXPECT_EQ(members.size(), tracker.component_size(s));
  }
}

TEST(ComponentTracker, AllSitesDown) {
  const net::Topology topo = net::make_ring(4);
  LiveNetwork live(topo);
  const ComponentTracker tracker(live);
  for (net::SiteId s = 0; s < 4; ++s) live.set_site_up(s, false);
  EXPECT_EQ(tracker.component_count(), 0u);
  EXPECT_EQ(tracker.max_component_votes(), 0u);
}

TEST(ComponentTracker, RecoveryMergesComponents) {
  const net::Topology topo = net::make_ring(6);
  LiveNetwork live(topo);
  const ComponentTracker tracker(live);
  live.set_site_up(0, false);
  live.set_site_up(3, false);
  EXPECT_EQ(tracker.component_count(), 2u);
  live.set_site_up(0, true);
  EXPECT_EQ(tracker.component_count(), 1u);
  EXPECT_EQ(tracker.component_votes(1), 5u);
}

TEST(ComponentTracker, RecoveriesAbsorbWithoutRebuild) {
  const net::Topology topo = net::make_ring(8);
  LiveNetwork live(topo);
  const ComponentTracker tracker(live);
  const auto base = tracker.stats();  // construction performs one rebuild

  live.set_link_up(0, false);
  live.set_link_up(4, false);
  EXPECT_EQ(tracker.component_count(), 2u);  // failures: one lazy rebuild
  EXPECT_EQ(tracker.stats().full_rebuilds, base.full_rebuilds + 1);

  // Link recoveries merge via union-find; the rebuild count must not move.
  live.set_link_up(0, true);
  EXPECT_EQ(tracker.component_count(), 1u);
  live.set_link_up(4, true);
  EXPECT_EQ(tracker.component_count(), 1u);
  EXPECT_EQ(tracker.component_votes(0), 8u);
  EXPECT_EQ(tracker.max_component_votes(), 8u);
  EXPECT_EQ(tracker.stats().full_rebuilds, base.full_rebuilds + 1);
  EXPECT_EQ(tracker.stats().incremental_applies, base.incremental_applies + 2);
}

TEST(ComponentTracker, SiteRecoveryMergesIncrementally) {
  const net::Topology topo = net::make_ring(6);
  LiveNetwork live(topo);
  const ComponentTracker tracker(live);
  live.set_site_up(0, false);
  live.set_site_up(3, false);
  EXPECT_EQ(tracker.component_count(), 2u);  // chains {1,2} and {4,5}
  const auto after_fail = tracker.stats();

  // Site 0 coming back bridges the two chains through links {5,0},{0,1}.
  live.set_site_up(0, true);
  EXPECT_EQ(tracker.component_count(), 1u);
  EXPECT_EQ(tracker.component_votes(1), 5u);
  EXPECT_TRUE(tracker.connected(2, 4));
  EXPECT_EQ(tracker.stats().full_rebuilds, after_fail.full_rebuilds);
  EXPECT_EQ(tracker.stats().incremental_applies,
            after_fail.incremental_applies + 1);

  // Structural queries after an incremental merge force a compaction and
  // must agree with the scalar ones.
  const std::int32_t comp = tracker.component_of(1);
  ASSERT_NE(comp, kNoComponent);
  EXPECT_EQ(tracker.members(comp).size(), 5u);
  EXPECT_GT(tracker.stats().compactions, after_fail.compactions);
}

TEST(ComponentTracker, MixedDeltaBatchRebuildsOnce) {
  const net::Topology topo = net::make_ring(10);
  LiveNetwork live(topo);
  const ComponentTracker tracker(live);
  const auto base = tracker.stats();

  // A burst of changes between queries — including failures — costs
  // exactly one rebuild when the next query lands, however long the burst.
  live.set_link_up(0, false);
  live.set_link_up(0, true);
  live.set_site_up(2, false);
  live.set_site_up(7, false);
  live.set_site_up(2, true);
  live.set_link_up(5, false);
  EXPECT_EQ(tracker.component_count(), 2u);  // site 7 down + link 5 cut
  EXPECT_EQ(tracker.stats().full_rebuilds, base.full_rebuilds + 1);
}

/// Brute-force reference: label components by repeated BFS over a fresh
/// adjacency scan.
std::vector<int> reference_labels(const LiveNetwork& live) {
  const net::Topology& topo = live.topology();
  std::vector<int> label(topo.site_count(), -1);
  int next = 0;
  for (net::SiteId root = 0; root < topo.site_count(); ++root) {
    if (!live.is_site_up(root) || label[root] != -1) continue;
    std::vector<net::SiteId> stack{root};
    label[root] = next;
    while (!stack.empty()) {
      const net::SiteId s = stack.back();
      stack.pop_back();
      for (net::LinkId l = 0; l < topo.link_count(); ++l) {
        const net::Link& e = topo.link(l);
        if (!live.link_operational(l)) continue;
        net::SiteId other;
        if (e.a == s) {
          other = e.b;
        } else if (e.b == s) {
          other = e.a;
        } else {
          continue;
        }
        if (label[other] == -1) {
          label[other] = next;
          stack.push_back(other);
        }
      }
    }
    ++next;
  }
  return label;
}

TEST(ComponentTracker, RandomizedAgreesWithReference) {
  const net::Topology topo = net::make_erdos_renyi(14, 0.25, 99);
  LiveNetwork live(topo);
  const ComponentTracker tracker(live);
  rng::Xoshiro256ss gen(4242);

  for (int step = 0; step < 2000; ++step) {
    // Random toggle of a random site or link.
    if (rng::bernoulli(gen, 0.5)) {
      const auto s =
          static_cast<net::SiteId>(rng::uniform_index(gen, topo.site_count()));
      live.set_site_up(s, !live.is_site_up(s));
    } else if (topo.link_count() > 0) {
      const auto l =
          static_cast<net::LinkId>(rng::uniform_index(gen, topo.link_count()));
      live.set_link_up(l, !live.is_link_up(l));
    }

    const std::vector<int> ref = reference_labels(live);
    // Same partition (labels may be permuted): check pairwise equivalence
    // through a bijection map, and per-site vote/size totals.
    std::map<int, std::int32_t> forward;
    std::map<std::int32_t, int> backward;
    for (net::SiteId s = 0; s < topo.site_count(); ++s) {
      const std::int32_t mine = tracker.component_of(s);
      ASSERT_EQ(ref[s] == -1, mine == kNoComponent) << "site " << s;
      if (ref[s] == -1) continue;
      auto [fit, finserted] = forward.try_emplace(ref[s], mine);
      EXPECT_EQ(fit->second, mine);
      auto [bit, binserted] = backward.try_emplace(mine, ref[s]);
      EXPECT_EQ(bit->second, ref[s]);

      // Vote total = component size here (uniform single votes).
      std::uint32_t ref_size = 0;
      for (net::SiteId x = 0; x < topo.site_count(); ++x) {
        ref_size += ref[x] == ref[s] ? 1u : 0u;
      }
      EXPECT_EQ(tracker.component_size(s), ref_size);
      EXPECT_EQ(tracker.component_votes(s), ref_size);
    }
  }
}

// ---------------------------------------------------------------------------
// Packed-word liveness state (SoA bitsets) and the word-parallel rebuild.

TEST(LiveNetwork, WordFlagsMirrorByteFlags) {
  const net::Topology topo = net::make_erdos_renyi(100, 0.1, 7);
  LiveNetwork live(topo);
  rng::Xoshiro256ss gen(123);

  const auto check_mirror = [&] {
    const auto site_words = live.site_up_words();
    const auto link_words = live.link_up_words();
    ASSERT_EQ(site_words.size(), bits::word_count(topo.site_count()));
    ASSERT_EQ(link_words.size(), bits::word_count(topo.link_count()));
    for (net::SiteId s = 0; s < topo.site_count(); ++s) {
      const bool bit =
          (site_words[s / 64] >> (s % 64) & 1) != 0;
      EXPECT_EQ(bit, live.is_site_up(s)) << "site " << s;
    }
    for (net::LinkId l = 0; l < topo.link_count(); ++l) {
      const bool bit =
          (link_words[l / 64] >> (l % 64) & 1) != 0;
      EXPECT_EQ(bit, live.is_link_up(l)) << "link " << l;
    }
    // Tail bits above the element count must stay zero: consumers
    // popcount whole words and must never see ghost elements.
    const std::uint32_t site_tail = topo.site_count() % 64;
    if (site_tail != 0) {
      EXPECT_EQ(site_words.back() >> site_tail, 0u);
    }
    const std::uint32_t link_tail = topo.link_count() % 64;
    if (link_tail != 0) {
      EXPECT_EQ(link_words.back() >> link_tail, 0u);
    }
  };

  check_mirror();
  for (int step = 0; step < 500; ++step) {
    if (rng::bernoulli(gen, 0.5)) {
      const auto s =
          static_cast<net::SiteId>(rng::uniform_index(gen, topo.site_count()));
      live.set_site_up(s, !live.is_site_up(s));
    } else {
      const auto l =
          static_cast<net::LinkId>(rng::uniform_index(gen, topo.link_count()));
      live.set_link_up(l, !live.is_link_up(l));
    }
  }
  check_mirror();
  live.reset_all_up();
  check_mirror();
}

TEST(LiveNetwork, DenseAdjacencyRowsMirrorLinkState) {
  const net::Topology topo = net::make_ring(10);
  LiveNetwork live(topo);
  ASSERT_TRUE(live.has_dense_adjacency());
  ASSERT_EQ(live.adjacency_row_words(), 1u);

  const auto row_bit = [&](net::SiteId a, net::SiteId b) {
    return (live.adjacency_row(a)[b / 64] >> (b % 64) & 1) != 0;
  };
  EXPECT_TRUE(row_bit(0, 1));
  EXPECT_TRUE(row_bit(1, 0));
  EXPECT_FALSE(row_bit(0, 2));  // no such link

  const net::LinkId l01 = topo.find_link(0, 1);
  live.set_link_up(l01, false);
  EXPECT_FALSE(row_bit(0, 1));
  EXPECT_FALSE(row_bit(1, 0));
  EXPECT_TRUE(row_bit(0, 9));  // untouched

  // Site liveness is deliberately NOT baked into the rows.
  live.set_site_up(9, false);
  EXPECT_TRUE(row_bit(0, 9));

  live.reset_all_up();
  EXPECT_TRUE(row_bit(0, 1));
  EXPECT_TRUE(row_bit(1, 0));
}

TEST(LiveNetwork, LargeTopologySkipsDenseRows) {
  // One past the dense ceiling: the quadratic rows must be disabled and
  // the tracker must fall back to the CSR path (and still be correct —
  // covered by SparseRandomizedAgreesWithReference below).
  const net::Topology big = net::make_grid(65, 64);  // 4160 > 4096
  const LiveNetwork live_big(big);
  EXPECT_FALSE(live_big.has_dense_adjacency());

  const net::Topology at = net::make_grid(64, 64);  // exactly 4096
  const LiveNetwork live_at(at);
  EXPECT_TRUE(live_at.has_dense_adjacency());
}

TEST(LiveNetwork, JournalCapacityConfigurable) {
  const net::Topology topo = net::make_ring(5);
  const LiveNetwork dflt(topo);
  EXPECT_EQ(dflt.journal_capacity(), LiveNetwork::kJournalCapacity);

  const LiveNetwork wide(topo, 1024);
  EXPECT_EQ(wide.journal_capacity(), 1024u);

  EXPECT_THROW(LiveNetwork(topo, 0), std::invalid_argument);
  EXPECT_THROW(LiveNetwork(topo, 1), std::invalid_argument);
  EXPECT_THROW(LiveNetwork(topo, 24), std::invalid_argument);
}

TEST(ComponentTracker, JournalOverflowFallsBackToRebuild) {
  // With a 4-slot journal, replaying 6 recoveries is impossible (the
  // oldest deltas were overwritten) and the tracker must detect the
  // overflow and rebuild; with an 8-slot journal the same batch is
  // absorbed incrementally. Same event sequence, different capacity.
  const net::Topology topo = net::make_ring(12);
  for (const std::uint64_t capacity : {4ull, 8ull}) {
    LiveNetwork live(topo, capacity);
    ComponentTracker tracker(live);
    for (net::SiteId s = 0; s < 6; ++s) live.set_site_up(s, false);
    ASSERT_EQ(tracker.component_count(), 1u);  // sites 6..11 still chained
    const std::uint64_t rebuilds0 = tracker.stats().full_rebuilds;

    for (net::SiteId s = 0; s < 6; ++s) live.set_site_up(s, true);
    EXPECT_EQ(tracker.component_count(), 1u);
    EXPECT_EQ(tracker.component_size(0), 12u);
    const std::uint64_t rebuilds = tracker.stats().full_rebuilds - rebuilds0;
    if (capacity == 4) {
      EXPECT_EQ(rebuilds, 1u) << "overflow must force exactly one rebuild";
    } else {
      EXPECT_EQ(rebuilds, 0u) << "a sufficient journal absorbs recoveries";
    }
  }
}

TEST(ComponentTracker, MemberWordsMatchMembers) {
  const net::Topology topo = net::make_ring(70);  // spans >1 word
  LiveNetwork live(topo);
  const ComponentTracker tracker(live);
  // Split the ring into two arcs.
  live.set_link_up(topo.find_link(0, 1), false);
  live.set_link_up(topo.find_link(40, 41), false);
  ASSERT_EQ(tracker.component_count(), 2u);

  for (const net::SiteId probe : {net::SiteId{1}, net::SiteId{41}}) {
    const std::int32_t comp = tracker.component_of(probe);
    const auto words = tracker.member_words(comp);
    ASSERT_EQ(words.size(), bits::word_count(topo.site_count()));
    std::uint64_t popcount_total = 0;
    for (const bits::Word w : words)
      popcount_total += static_cast<std::uint64_t>(std::popcount(w));
    EXPECT_EQ(popcount_total, tracker.component_size(probe));
    for (const net::SiteId s : tracker.members(comp)) {
      EXPECT_NE(words[s / 64] & (bits::Word{1} << (s % 64)), 0u)
          << "member " << s << " missing from member_words";
    }
  }
}

TEST(Bitwords, KernelVariantsBitIdentical) {
  // The runtime-dispatch determinism contract: scalar and AVX2 variants
  // must agree bit for bit on every input, including non-multiple-of-4
  // word counts (the SIMD tail path).
  rng::Xoshiro256ss gen(99);
  for (const std::size_t n : {std::size_t{1}, std::size_t{3}, std::size_t{4},
                              std::size_t{7}, std::size_t{64},
                              std::size_t{129}}) {
    std::vector<bits::Word> a(n), b(n), dst_scalar(n);
    for (std::size_t i = 0; i < n; ++i) {
      a[i] = gen();
      b[i] = gen();
      dst_scalar[i] = gen();
    }
    std::vector<bits::Word> dst_dispatch = dst_scalar;
    bits::detail::or_and_scalar(dst_scalar.data(), a.data(), b.data(), n);
    bits::or_and(dst_dispatch.data(), a.data(), b.data(), n);
    EXPECT_EQ(dst_scalar, dst_dispatch) << "n=" << n;
    EXPECT_EQ(bits::detail::popcount_and_scalar(a.data(), b.data(), n),
              bits::popcount_and(a.data(), b.data(), n))
        << "n=" << n;
#if defined(__x86_64__) || defined(__i386__)
    if (__builtin_cpu_supports("avx2")) {
      // Direct variant-vs-variant check, independent of the dispatcher
      // (which may have been forced scalar via QUORA_SIMD).
      std::vector<bits::Word> dst_avx2 = dst_scalar;
      for (std::size_t i = 0; i < n; ++i) dst_avx2[i] = a[i] ^ b[i];
      std::vector<bits::Word> dst_ref = dst_avx2;
      bits::detail::or_and_scalar(dst_ref.data(), a.data(), b.data(), n);
      bits::detail::or_and_avx2(dst_avx2.data(), a.data(), b.data(), n);
      EXPECT_EQ(dst_ref, dst_avx2) << "n=" << n;
      EXPECT_EQ(bits::detail::popcount_and_scalar(a.data(), b.data(), n),
                bits::detail::popcount_and_avx2(a.data(), b.data(), n))
          << "n=" << n;
    }
#endif
  }
}

/// CSR-based reference labeling (cheap enough for >4096-site graphs,
/// where reference_labels' all-links scan is quadratic).
std::vector<int> csr_reference_labels(const LiveNetwork& live) {
  const net::Topology& topo = live.topology();
  std::vector<int> label(topo.site_count(), -1);
  int next = 0;
  for (net::SiteId root = 0; root < topo.site_count(); ++root) {
    if (!live.is_site_up(root) || label[root] != -1) continue;
    std::vector<net::SiteId> stack{root};
    label[root] = next;
    while (!stack.empty()) {
      const net::SiteId s = stack.back();
      stack.pop_back();
      for (const net::Topology::Edge& e : topo.neighbors(s)) {
        if (!live.is_link_up(e.link) || !live.is_site_up(e.neighbor)) continue;
        if (label[e.neighbor] != -1) continue;
        label[e.neighbor] = next;
        stack.push_back(e.neighbor);
      }
    }
    ++next;
  }
  return label;
}

TEST(ComponentTracker, SparseRandomizedAgreesWithReference) {
  // Above the dense ceiling, so this drives rebuild_sparse — the path the
  // 50k/250k/1M scale points rely on.
  const net::Topology topo = net::make_grid(80, 60);  // 4800 sites
  LiveNetwork live(topo);
  const ComponentTracker tracker(live);
  ASSERT_FALSE(live.has_dense_adjacency());
  rng::Xoshiro256ss gen(31337);

  for (int step = 0; step < 60; ++step) {
    for (int burst = 0; burst < 5; ++burst) {
      if (rng::bernoulli(gen, 0.3)) {
        const auto s = static_cast<net::SiteId>(
            rng::uniform_index(gen, topo.site_count()));
        live.set_site_up(s, !live.is_site_up(s));
      } else {
        const auto l = static_cast<net::LinkId>(
            rng::uniform_index(gen, topo.link_count()));
        live.set_link_up(l, !live.is_link_up(l));
      }
    }
    const std::vector<int> ref = csr_reference_labels(live);
    std::map<int, std::int32_t> forward;
    std::map<std::int32_t, int> backward;
    for (net::SiteId s = 0; s < topo.site_count(); ++s) {
      const std::int32_t mine = tracker.component_of(s);
      ASSERT_EQ(ref[s] == -1, mine == kNoComponent) << "site " << s;
      if (ref[s] == -1) continue;
      auto [fit, finserted] = forward.try_emplace(ref[s], mine);
      ASSERT_EQ(fit->second, mine) << "site " << s;
      auto [bit, binserted] = backward.try_emplace(mine, ref[s]);
      ASSERT_EQ(bit->second, ref[s]) << "site " << s;
    }
  }
}

TEST(ComponentTracker, DenseRandomizedAgreesWithReference) {
  // 80 sites (rows span two words) with m >> n^2/64, so this drives the
  // word-parallel rebuild_dense path under churn.
  const net::Topology topo = net::make_erdos_renyi(80, 0.3, 11);
  ASSERT_GE(64ull * topo.link_count(),
            static_cast<std::uint64_t>(topo.site_count()) * topo.site_count());
  LiveNetwork live(topo);
  const ComponentTracker tracker(live);
  rng::Xoshiro256ss gen(555);

  for (int step = 0; step < 300; ++step) {
    for (int burst = 0; burst < 3; ++burst) {
      if (rng::bernoulli(gen, 0.4)) {
        const auto s = static_cast<net::SiteId>(
            rng::uniform_index(gen, topo.site_count()));
        live.set_site_up(s, !live.is_site_up(s));
      } else {
        const auto l = static_cast<net::LinkId>(
            rng::uniform_index(gen, topo.link_count()));
        live.set_link_up(l, !live.is_link_up(l));
      }
    }
    const std::vector<int> ref = csr_reference_labels(live);
    std::map<int, std::int32_t> forward;
    std::map<std::int32_t, int> backward;
    for (net::SiteId s = 0; s < topo.site_count(); ++s) {
      const std::int32_t mine = tracker.component_of(s);
      ASSERT_EQ(ref[s] == -1, mine == kNoComponent) << "site " << s;
      if (ref[s] == -1) continue;
      auto [fit, finserted] = forward.try_emplace(ref[s], mine);
      ASSERT_EQ(fit->second, mine) << "site " << s;
      auto [bit, binserted] = backward.try_emplace(mine, ref[s]);
      ASSERT_EQ(bit->second, ref[s]) << "site " << s;
    }
  }
}

TEST(ComponentTracker, MembersAscendAfterRebuildAndMerge) {
  // Canonical member order: ascending site id from both the rebuild
  // paths and the incremental-merge compaction.
  const net::Topology topo = net::make_fully_connected(9);
  LiveNetwork live(topo);
  const ComponentTracker tracker(live);

  live.set_site_up(4, false);  // failure -> full rebuild
  auto check_ascending = [&] {
    for (std::uint32_t c = 0; c < tracker.component_count(); ++c) {
      const auto m = tracker.members(static_cast<std::int32_t>(c));
      for (std::size_t i = 1; i < m.size(); ++i) {
        EXPECT_LT(m[i - 1], m[i]);
      }
    }
  };
  check_ascending();
  live.set_site_up(4, true);  // recovery -> incremental merge + compaction
  check_ascending();
}

} // namespace
} // namespace quora::conn
