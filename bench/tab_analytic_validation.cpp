// DESIGN.md ANLT — §4.2's closed-form component-size densities validated
// against the discrete-event simulator:
//
//   ring      n = 101 (the paper's Topology 0), f from the chain formula
//   complete  n = 21, f from C(n-1,v-1) p^v ((1-p)+p(1-r)^v)^{n-v} Rel(v,r)
//             with Gilbert's (1959) recursion for Rel
//   bus       n = 20 sites + fallible bus hub, perfect taps
//             (kSitesSurviveBus architecture)
//
// The simulator knows nothing of these formulas — it just fails and
// repairs components — so agreement here validates both sides.

#include <cmath>
#include <iostream>
#include <memory>

#include "common.hpp"
#include "core/component_dist.hpp"
#include "metrics/collectors.hpp"
#include "net/builders.hpp"
#include "report/table.hpp"
#include "sim/simulator.hpp"

namespace {

using quora::core::VotePdf;
using quora::report::TextTable;

double total_variation(const VotePdf& a, const VotePdf& b) {
  double tv = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) tv += std::abs(a[i] - b[i]);
  return 0.5 * tv;
}

/// Simulates `topo` and returns the pooled empirical f over `sites`
/// (per-site histograms merged — valid when the listed sites are
/// symmetric).
VotePdf simulate_site_pdf(const quora::net::Topology& topo,
                          const quora::sim::SimConfig& config,
                          const quora::sim::FailureProfile& profile,
                          const std::vector<quora::net::SiteId>& sites,
                          std::uint64_t seed) {
  quora::sim::AccessSpec spec;
  quora::sim::Simulator sim(topo, config, spec, profile, seed);
  sim.run_accesses(config.warmup_accesses);

  quora::metrics::VotesSeenCollector::Options options;
  options.per_site = true;
  options.track_max_component = false;
  quora::metrics::VotesSeenCollector collector(topo, options);
  sim.add_access_observer(&collector);
  sim.run_accesses(config.accesses_per_batch);

  quora::stats::IntHistogram pooled(topo.total_votes());
  for (const quora::net::SiteId s : sites) pooled.merge(collector.site_hist(s));
  return pooled.pdf();
}

void report_match(TextTable& table, const std::string& what, const VotePdf& analytic,
                  const VotePdf& measured) {
  double max_abs = 0.0;
  for (std::size_t i = 0; i < analytic.size(); ++i) {
    max_abs = std::max(max_abs, std::abs(analytic[i] - measured[i]));
  }
  table.add_row({what, TextTable::fmt(quora::core::pdf_total(analytic), 6),
                 TextTable::fmt(total_variation(analytic, measured), 4),
                 TextTable::fmt(max_abs, 4),
                 TextTable::fmt(quora::core::pdf_mean(analytic), 3),
                 TextTable::fmt(quora::core::pdf_mean(measured), 3)});
}

} // namespace

int main(int argc, char** argv) {
  const quora::bench::RunScale scale = quora::bench::parse_args(argc, argv);
  quora::sim::SimConfig config = quora::bench::to_config(scale);
  constexpr double kP = 0.96;
  constexpr double kR = 0.96;

  std::cout << "== Analytic f_i(v) vs simulation (paper 4.2) ==\n\n";
  TextTable table({"network", "analytic sum", "TV distance", "max |diff|",
                   "analytic mean", "measured mean"});

  {
    const auto topo = quora::net::make_ring(101);
    const VotePdf analytic = quora::core::ring_site_pdf(101, kP, kR);
    const VotePdf measured = simulate_site_pdf(topo, config, {}, {0, 25, 50, 75},
                                               scale.seed);
    report_match(table, "ring n=101", analytic, measured);
  }
  {
    const auto topo = quora::net::make_fully_connected(21);
    const VotePdf analytic = quora::core::fully_connected_site_pdf(21, kP, kR);
    const VotePdf measured =
        simulate_site_pdf(topo, config, {}, {0, 7, 14}, scale.seed + 1);
    report_match(table, "complete n=21 (Gilbert Rel)", analytic, measured);
  }
  {
    // Bus: hub site 0 *is* the bus (reliability r, zero votes); taps are
    // perfectly reliable links; leaves survive a bus failure as singleton
    // components — exactly the kSitesSurviveBus architecture.
    constexpr std::uint32_t kLeaves = 20;
    const auto topo = quora::net::make_star(kLeaves + 1, /*hub_votes=*/0);
    std::vector<double> site_rel(kLeaves + 1, kP);
    site_rel[0] = kR;
    const std::vector<double> link_rel(topo.link_count(), 1.0);
    const auto profile =
        quora::sim::FailureProfile::from_reliabilities(config, site_rel, link_rel);
    const VotePdf analytic = quora::core::bus_site_pdf(
        kLeaves, kP, kR, quora::core::BusArchitecture::kSitesSurviveBus);
    const VotePdf measured =
        simulate_site_pdf(topo, config, profile, {1, 5, 10, 15}, scale.seed + 2);
    report_match(table, "bus n=20 (sites survive)", analytic, measured);
  }

  table.print(std::cout);
  std::cout << "\nGilbert Rel(m, r=0.96) ladder: ";
  for (std::uint32_t m : {2u, 5u, 10u, 25u, 50u, 101u}) {
    std::cout << "Rel(" << m << ")=" << TextTable::fmt(quora::core::gilbert_rel(m, kR), 5)
              << "  ";
  }
  std::cout << "\n(analytic sums must be 1.000000; TV distance shrinks with "
               "--batch; the kSitesDieWithBus variant is validated "
               "analytically in the test suite — correlated bus-site death "
               "is outside the independent-failure simulator)\n";
  return 0;
}
