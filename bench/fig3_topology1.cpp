// Figure 3: Topology 1 (ring + 1 chord) — availability vs q_r for alpha in {0, .25, .50, .75, 1}
// on the paper's 101-site topology with 1 chords (DESIGN.md FIG3).

#include "common.hpp"
#include "net/builders.hpp"

int main(int argc, char** argv) {
  const quora::bench::RunScale scale = quora::bench::parse_args(argc, argv);
  const quora::net::Topology topo = quora::net::make_ring_with_chords(101, 1);
  quora::bench::run_figure(topo, "Figure 3: Topology 1 (ring + 1 chord)", scale);
  return 0;
}
