// DESIGN.md SURV — footnote 3: the same Figure-1 optimization run under
// the *survivability* metric, by substituting the distribution of votes in
// the largest component for the per-site distribution f_i.
//
// SURV asks "does any site retain access?", ACC asks "can a random site
// access?" — so SURV dominates ACC pointwise, and SURV's optima can sit at
// different quorums.

#include <iostream>

#include "common.hpp"
#include "core/optimize.hpp"
#include "net/builders.hpp"
#include "report/table.hpp"

int main(int argc, char** argv) {
  using quora::core::AvailabilityCurve;
  using quora::report::TextTable;

  const quora::bench::RunScale scale = quora::bench::parse_args(argc, argv);

  std::cout << "== SURV-metric optimization (paper footnote 3) ==\n\n";
  TextTable table({"topology", "alpha", "ACC opt q_r", "ACC value", "SURV opt q_r",
                   "SURV value", "SURV>=ACC everywhere?"});

  for (const std::uint32_t chords : {2u, 16u, 256u}) {
    const quora::net::Topology topo = quora::net::make_ring_with_chords(101, chords);
    const auto curves = quora::metrics::measure_curves(
        topo, quora::bench::to_config(scale), quora::bench::to_policy(scale));
    const AvailabilityCurve acc = curves.pooled_curve();
    const AvailabilityCurve surv = curves.surv_curve();

    for (const double alpha : curves.alphas) {
      const auto acc_best = quora::core::optimize_exhaustive(acc, alpha);
      const auto surv_best = quora::core::optimize_exhaustive(surv, alpha);
      // Dominance holds exactly in distribution; the two estimates come
      // from different histograms of the same run, so compare within the
      // measurement CI.
      bool dominates = true;
      for (quora::net::Vote q = 1; q <= acc.max_read_quorum(); ++q) {
        if (surv.availability(alpha, q) + curves.max_half_width <
            acc.availability(alpha, q)) {
          dominates = false;
          break;
        }
      }
      table.add_row({"topology-" + std::to_string(chords), TextTable::fmt(alpha, 2),
                     std::to_string(acc_best.q_r()), TextTable::fmt(acc_best.value, 4),
                     std::to_string(surv_best.q_r()),
                     TextTable::fmt(surv_best.value, 4), dominates ? "yes" : "NO"});
    }
    table.add_separator();
  }
  table.print(std::cout);
  std::cout << "\n(single-site reliability 0.96 bounds SURV from below and "
               "ACC from above — paper section 3)\n";
  return 0;
}
