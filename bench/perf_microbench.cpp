// DESIGN.md PERF — engineering benchmarks (google-benchmark). The paper's
// study cost 0.5-2 hours per 1M-access batch on a DECstation 5000; these
// track what the same work costs in this implementation, per subsystem.

#include <benchmark/benchmark.h>

#include "conn/component_tracker.hpp"
#include "db/database.hpp"
#include "quorum/coterie_protocol.hpp"
#include "quorum/replicated_store.hpp"
#include "quorum/witness_store.hpp"
#include "conn/live_network.hpp"
#include "core/component_dist.hpp"
#include "core/optimize.hpp"
#include "msg/cluster.hpp"
#include "net/builders.hpp"
#include "rng/alias_table.hpp"
#include "rng/distributions.hpp"
#include "sim/event.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace quora;

void BM_Xoshiro(benchmark::State& state) {
  rng::Xoshiro256ss gen(1);
  for (auto _ : state) benchmark::DoNotOptimize(gen());
}
BENCHMARK(BM_Xoshiro);

void BM_Exponential(benchmark::State& state) {
  rng::Xoshiro256ss gen(1);
  for (auto _ : state) benchmark::DoNotOptimize(rng::exponential(gen, 128.0));
}
BENCHMARK(BM_Exponential);

void BM_AliasSample(benchmark::State& state) {
  rng::Xoshiro256ss gen(1);
  std::vector<double> weights(static_cast<std::size_t>(state.range(0)));
  for (std::size_t i = 0; i < weights.size(); ++i) {
    weights[i] = static_cast<double>(i % 7 + 1);
  }
  const rng::AliasTable table(weights);
  for (auto _ : state) benchmark::DoNotOptimize(table.sample(gen));
}
BENCHMARK(BM_AliasSample)->Arg(101)->Arg(4096);

void BM_EventQueue(benchmark::State& state) {
  sim::EventQueue queue;
  rng::Xoshiro256ss gen(1);
  for (int i = 0; i < 256; ++i) {
    queue.push(gen.next_double(), sim::EventKind::kAccess, 0);
  }
  for (auto _ : state) {
    const sim::Event e = queue.pop();
    queue.push(e.time + rng::exponential(gen, 1.0), sim::EventKind::kAccess, 0);
  }
}
BENCHMARK(BM_EventQueue);

void tracker_refresh(benchmark::State& state, const net::Topology& topo) {
  conn::LiveNetwork live(topo);
  conn::ComponentTracker tracker(live);
  rng::Xoshiro256ss gen(7);
  for (auto _ : state) {
    const auto link = static_cast<net::LinkId>(
        rng::uniform_index(gen, topo.link_count()));
    live.set_link_up(link, !live.is_link_up(link));
    benchmark::DoNotOptimize(tracker.component_votes(0));
  }
  state.counters["rebuilds"] =
      static_cast<double>(tracker.stats().full_rebuilds);
  state.counters["incremental"] =
      static_cast<double>(tracker.stats().incremental_applies);
}

void BM_ComponentTrackerRefresh_Ring101(benchmark::State& state) {
  const auto topo = net::make_ring(101);
  tracker_refresh(state, topo);
}
BENCHMARK(BM_ComponentTrackerRefresh_Ring101);

void BM_ComponentTrackerRefresh_Topology256(benchmark::State& state) {
  const auto topo = net::make_ring_with_chords(101, 256);
  tracker_refresh(state, topo);
}
BENCHMARK(BM_ComponentTrackerRefresh_Topology256);

void BM_ComponentTrackerRefresh_Complete101(benchmark::State& state) {
  const auto topo = net::make_fully_connected(101);
  tracker_refresh(state, topo);
}
BENCHMARK(BM_ComponentTrackerRefresh_Complete101);

// The paper's Topology 4949 (Table 1) is the complete graph on 101 sites
// expressed as ring + 4949 chords; kept distinct from Complete101 so the
// two builder paths stay comparable.
void BM_ComponentTrackerRefresh_Topology4949(benchmark::State& state) {
  const auto topo = net::make_ring_with_chords(101, 4949);
  tracker_refresh(state, topo);
}
BENCHMARK(BM_ComponentTrackerRefresh_Topology4949);

// One decided access through the message-level cluster: flood, votes,
// commit, acks — the end-to-end cost the chaos soak pays per access.
void BM_ClusterAccess(benchmark::State& state) {
  const auto topo = net::make_ring_with_chords(25, 4);
  msg::Cluster::Params params;
  params.spec = quorum::QuorumSpec{13, 13};
  msg::Cluster cluster(topo, params, 42);
  std::uint64_t decided = 0;
  for (auto _ : state) {
    cluster.run_decided_accesses(1);
    ++decided;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(decided));
}
BENCHMARK(BM_ClusterAccess);

void simulator_throughput(benchmark::State& state, const net::Topology& topo) {
  sim::SimConfig config;
  sim::AccessSpec spec;
  sim::Simulator sim(topo, config, spec, 42);
  std::uint64_t accesses = 0;
  for (auto _ : state) {
    sim.run_accesses(100);
    accesses += 100;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(accesses));
}

void BM_Simulator_Ring101(benchmark::State& state) {
  const auto topo = net::make_ring(101);
  simulator_throughput(state, topo);
}
BENCHMARK(BM_Simulator_Ring101);

void BM_Simulator_Complete101(benchmark::State& state) {
  const auto topo = net::make_fully_connected(101);
  simulator_throughput(state, topo);
}
BENCHMARK(BM_Simulator_Complete101);

core::AvailabilityCurve make_test_curve() {
  return core::AvailabilityCurve(core::ring_site_pdf(101, 0.96, 0.96));
}

void BM_OptimizeExhaustive(benchmark::State& state) {
  const auto curve = make_test_curve();
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::optimize_exhaustive(curve, 0.75));
  }
}
BENCHMARK(BM_OptimizeExhaustive);

void BM_OptimizeGolden(benchmark::State& state) {
  const auto curve = make_test_curve();
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::optimize_golden(curve, 0.75));
  }
}
BENCHMARK(BM_OptimizeGolden);

void BM_OptimizeBrent(benchmark::State& state) {
  const auto curve = make_test_curve();
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::optimize_brent(curve, 0.75));
  }
}
BENCHMARK(BM_OptimizeBrent);

void BM_GilbertRel(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::gilbert_rel(static_cast<std::uint32_t>(state.range(0)), 0.96));
  }
}
BENCHMARK(BM_GilbertRel)->Arg(10)->Arg(101);

void BM_RingPdf(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::ring_site_pdf(101, 0.96, 0.96));
  }
}
BENCHMARK(BM_RingPdf);

void BM_FullyConnectedPdf(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::fully_connected_site_pdf(101, 0.96, 0.96));
  }
}
BENCHMARK(BM_FullyConnectedPdf);

void BM_ReplicatedStoreRoundTrip(benchmark::State& state) {
  const auto topo = net::make_ring_with_chords(101, 16);
  conn::LiveNetwork live(topo);
  const conn::ComponentTracker tracker(live);
  quorum::ReplicatedStore store(topo);
  const quorum::QuorumSpec spec = quorum::from_read_quorum(101, 40);
  std::uint64_t v = 0;
  for (auto _ : state) {
    store.write(tracker, spec, 3, ++v);
    benchmark::DoNotOptimize(store.read(tracker, spec, 60));
  }
}
BENCHMARK(BM_ReplicatedStoreRoundTrip);

void BM_WitnessStoreRoundTrip(benchmark::State& state) {
  const auto topo = net::make_ring_with_chords(101, 16);
  conn::LiveNetwork live(topo);
  const conn::ComponentTracker tracker(live);
  quorum::WitnessStore store(topo, quorum::witness_mask_lowest_degree(topo, 50));
  const quorum::QuorumSpec spec = quorum::from_read_quorum(101, 40);
  std::uint64_t v = 0;
  for (auto _ : state) {
    store.write(tracker, spec, 3, ++v);
    benchmark::DoNotOptimize(store.read(tracker, spec, 60));
  }
}
BENCHMARK(BM_WitnessStoreRoundTrip);

void BM_CoterieDecision(benchmark::State& state) {
  const auto topo = net::make_ring_with_chords(12, 2);
  conn::LiveNetwork live(topo);
  const conn::ComponentTracker tracker(live);
  const auto engine = quorum::make_vote_coterie_protocol(
      topo, quorum::from_read_quorum(12, 4));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        engine.request(tracker, 5, quorum::AccessType::kRead));
  }
}
BENCHMARK(BM_CoterieDecision);

void BM_DatabaseTransaction(benchmark::State& state) {
  const auto topo = net::make_ring_with_chords(31, 4);
  conn::LiveNetwork live(topo);
  const conn::ComponentTracker tracker(live);
  db::Database database(topo, {{"a", quorum::from_read_quorum(31, 5)},
                               {"b", quorum::from_read_quorum(31, 12)}});
  std::uint64_t v = 0;
  const std::vector<db::Database::Op> ops{{0, false, 0}, {1, true, 0}};
  for (auto _ : state) {
    std::vector<db::Database::Op> txn = ops;
    txn[1].value = ++v;
    benchmark::DoNotOptimize(database.execute(tracker, 7, txn));
  }
}
BENCHMARK(BM_DatabaseTransaction);

} // namespace

BENCHMARK_MAIN();
