// Methodological check behind the paper's §5.2 protocol: batch means must
// be effectively independent for the Student-t confidence interval to be
// honest. Each batch here is an independent replication (own RNG stream,
// reset initial state) — exactly the paper's procedure — so the von
// Neumann ratio should sit near 2 and lag-1 autocorrelation near 0. For
// contrast, the same statistics are shown for *sequential* segments of a
// single long run, where the shared failure state induces correlation at
// small segment sizes.

#include <iostream>
#include <vector>

#include "common.hpp"
#include "metrics/collectors.hpp"
#include "net/builders.hpp"
#include "quorum/protocols.hpp"
#include "report/table.hpp"
#include "sim/simulator.hpp"
#include "stats/diagnostics.hpp"

namespace {

double segment_availability(quora::sim::Simulator& sim,
                            const quora::quorum::QuorumConsensus& engine,
                            std::uint64_t accesses) {
  quora::metrics::ProtocolMeter meter(quora::metrics::static_decider(engine));
  sim.add_access_observer(&meter);
  sim.run_accesses(accesses);
  sim.clear_observers();
  return meter.availability();
}

} // namespace

int main(int argc, char** argv) {
  using quora::report::TextTable;

  const quora::bench::RunScale scale = quora::bench::parse_args(argc, argv);
  const quora::net::Topology topo = quora::net::make_ring_with_chords(101, 4);
  const quora::quorum::QuorumConsensus engine(
      topo, quora::quorum::from_read_quorum(topo.total_votes(), 10));
  quora::sim::SimConfig config = quora::bench::to_config(scale);
  quora::sim::AccessSpec spec;
  spec.alpha = 0.5;

  std::cout << "== Batch-means diagnostics (topology-4, q_r=10, alpha=.5) ==\n\n";
  TextTable table({"scheme", "segment accesses", "n", "von Neumann", "lag-1 ac",
                   "eff. sample size"});

  constexpr std::uint32_t kBatches = 24;
  {
    // The paper's scheme: independent replications.
    std::vector<double> means;
    for (std::uint32_t b = 0; b < kBatches; ++b) {
      quora::sim::Simulator sim(topo, config, spec, scale.seed, b);
      sim.run_accesses(config.warmup_accesses);
      means.push_back(segment_availability(sim, engine, config.accesses_per_batch));
    }
    table.add_row({"independent replications",
                   std::to_string(config.accesses_per_batch),
                   std::to_string(kBatches),
                   TextTable::fmt(quora::stats::von_neumann_ratio(means), 2),
                   TextTable::fmt(quora::stats::autocorrelation(means, 1), 3),
                   TextTable::fmt(quora::stats::effective_sample_size(means), 1)});
  }

  // Sequential segments of one run, at several segment lengths: short
  // segments share failure state across boundaries and correlate.
  for (const std::uint64_t seg :
       {config.accesses_per_batch / 64, config.accesses_per_batch / 8,
        config.accesses_per_batch}) {
    quora::sim::Simulator sim(topo, config, spec, scale.seed + 1);
    sim.run_accesses(config.warmup_accesses);
    std::vector<double> means;
    for (std::uint32_t b = 0; b < kBatches; ++b) {
      means.push_back(segment_availability(sim, engine, seg));
    }
    table.add_row({"sequential segments", std::to_string(seg),
                   std::to_string(kBatches),
                   TextTable::fmt(quora::stats::von_neumann_ratio(means), 2),
                   TextTable::fmt(quora::stats::autocorrelation(means, 1), 3),
                   TextTable::fmt(quora::stats::effective_sample_size(means), 1)});
  }
  table.print(std::cout);
  std::cout << "\n(von Neumann ~ 2 and lag-1 ~ 0 indicate independence. "
               "Replications are\nindependent by construction — the paper's "
               "scheme — while sequential segments\nshare failure state "
               "across boundaries and can correlate, which would\nunderstate "
               "the Student-t interval. This is why 5.2 resets the network "
               "to the\ninitial state before each batch.)\n";
  return 0;
}
