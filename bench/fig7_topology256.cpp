// Figure 7: Topology 256 (ring + 256 chords) — availability vs q_r for alpha in {0, .25, .50, .75, 1}
// on the paper's 101-site topology with 256 chords (DESIGN.md FIG7).

#include "common.hpp"
#include "net/builders.hpp"

int main(int argc, char** argv) {
  const quora::bench::RunScale scale = quora::bench::parse_args(argc, argv);
  const quora::net::Topology topo = quora::net::make_ring_with_chords(101, 256);
  quora::bench::run_figure(topo, "Figure 7: Topology 256 (ring + 256 chords)", scale);
  return 0;
}
