// Sensitivity ablations around the paper's fixed stochastic parameters:
// rho = 1/128 (failure time scale) and component reliability 0.96. The
// paper holds both fixed; this bench asks how robust its conclusions —
// endpoint optima, the .96*alpha law, majority-vs-ROWA ordering — are to
// those choices.

#include <iostream>

#include "common.hpp"
#include "core/optimize.hpp"
#include "net/builders.hpp"
#include "report/table.hpp"

int main(int argc, char** argv) {
  using quora::core::AvailabilityCurve;
  using quora::report::TextTable;

  const quora::bench::RunScale scale = quora::bench::parse_args(argc, argv);
  const quora::net::Topology topo = quora::net::make_ring_with_chords(101, 4);

  std::cout << "== Sensitivity to rho and component reliability (topology-4) ==\n\n";

  TextTable rho_table({"rho", "alpha", "opt q_r", "A(opt)", "A(q_r=1)",
                       "A(majority end)"});
  for (const double rho : {1.0 / 32.0, 1.0 / 128.0, 1.0 / 512.0}) {
    quora::sim::SimConfig config = quora::bench::to_config(scale);
    config.rho = rho;
    const auto curves = quora::metrics::measure_curves(
        topo, config, quora::bench::to_policy(scale));
    const AvailabilityCurve curve = curves.pooled_curve();
    for (const double alpha : {0.25, 0.75}) {
      const auto best = quora::core::optimize_exhaustive(curve, alpha);
      rho_table.add_row(
          {"1/" + std::to_string(static_cast<int>(1.0 / rho)),
           TextTable::fmt(alpha, 2), std::to_string(best.q_r()),
           TextTable::fmt(best.value, 4),
           TextTable::fmt(curve.availability(alpha, 1), 4),
           TextTable::fmt(curve.availability(alpha, curve.max_read_quorum()), 4)});
    }
    rho_table.add_separator();
  }
  rho_table.print(std::cout);
  std::cout << "(rho only sets the event time scale; stationary component "
               "probabilities — and hence the curves — are unchanged, which "
               "is why the paper can fix it.)\n\n";

  TextTable rel_table({"reliability", "alpha", "opt q_r", "A(opt)", "A(q_r=1)",
                       "predicted p*alpha"});
  for (const double rel : {0.90, 0.96, 0.99}) {
    quora::sim::SimConfig config = quora::bench::to_config(scale);
    config.reliability = rel;
    const auto curves = quora::metrics::measure_curves(
        topo, config, quora::bench::to_policy(scale));
    const AvailabilityCurve curve = curves.pooled_curve();
    for (const double alpha : {0.25, 0.75}) {
      const auto best = quora::core::optimize_exhaustive(curve, alpha);
      rel_table.add_row({TextTable::fmt(rel, 2), TextTable::fmt(alpha, 2),
                         std::to_string(best.q_r()), TextTable::fmt(best.value, 4),
                         TextTable::fmt(curve.availability(alpha, 1), 4),
                         TextTable::fmt(rel * alpha, 4)});
    }
    rel_table.add_separator();
  }
  rel_table.print(std::cout);
  std::cout << "(the q_r = 1 law generalizes to A(alpha, 1) = p*alpha + "
               "(1-alpha)*W(T);\nthe write term is negligible at 0.96 but "
               "grows as reliability -> 1, where\nfull-network connectivity "
               "becomes likely and even interior optima appear.)\n";
  return 0;
}
