// Optimal vote assignment (paper references [7, 8] — Garcia-Molina &
// Barbara; Cheung, Ahamad & Ammar): when site reliabilities are
// heterogeneous, uniform one-vote-per-site is no longer optimal. This
// bench exhaustively searches vote vectors and quorum pairs on small
// networks (the literature's own scale: <= 7 sites) and reports the gain
// over uniform votes with majority quorums.

#include <iostream>
#include <vector>

#include "core/vote_opt.hpp"
#include "quorum/quorum_spec.hpp"
#include "report/table.hpp"

namespace {

std::string votes_string(const std::vector<quora::net::Vote>& votes) {
  std::string s;
  for (std::size_t i = 0; i < votes.size(); ++i) {
    s += (i ? "," : "") + std::to_string(votes[i]);
  }
  return s;
}

} // namespace

int main(int, char**) {
  using quora::report::TextTable;

  std::cout << "== Optimal vote assignments, heterogeneous reliabilities ==\n\n";

  struct Scenario {
    const char* label;
    std::vector<double> reliability;
  };
  const std::vector<Scenario> scenarios{
      {"uniform .90 x5", {0.90, 0.90, 0.90, 0.90, 0.90}},
      {"one strong site", {0.99, 0.85, 0.85, 0.85, 0.85}},
      {"two tiers", {0.98, 0.98, 0.80, 0.80, 0.80}},
      {"one weak site", {0.95, 0.95, 0.95, 0.95, 0.50}},
      {"spread", {0.99, 0.95, 0.90, 0.85, 0.80}},
  };

  TextTable table({"scenario", "alpha", "best votes", "q_r/q_w", "A(best)",
                   "A(uniform majority)", "gain"});
  for (const Scenario& sc : scenarios) {
    const std::vector<quora::net::Vote> uniform(sc.reliability.size(), 1);
    const auto total = static_cast<quora::net::Vote>(uniform.size());
    const quora::quorum::QuorumSpec maj = quora::quorum::majority(total);
    for (const double alpha : {0.25, 0.75}) {
      const auto best =
          quora::core::optimize_vote_assignment(sc.reliability, alpha, 3);
      const double uniform_a =
          quora::core::exact_availability(sc.reliability, uniform, alpha, maj);
      table.add_row({sc.label, TextTable::fmt(alpha, 2), votes_string(best.votes),
                     std::to_string(best.spec.q_r) + "/" +
                         std::to_string(best.spec.q_w),
                     TextTable::fmt(best.availability, 4),
                     TextTable::fmt(uniform_a, 4),
                     TextTable::pct(best.availability - uniform_a, 1)});
    }
    table.add_separator();
  }
  table.print(std::cout);
  std::cout << "\n(Exact enumeration in the non-partitionable model; skewed "
               "reliabilities pull\nvotes onto dependable sites — the "
               "references' qualitative finding.)\n";
  return 0;
}
