// DESIGN.md OPTM — §4.1 offers three ways to run step 4 of the algorithm:
// exhaustive scan, golden-section search, and Brent's method on the
// continuous extension. This ablation compares them on measured curves
// from every topology and alpha: do the fast searches find the true
// argmax, and how many objective evaluations does each spend?

#include <chrono>
#include <iostream>

#include "common.hpp"
#include "core/optimize.hpp"
#include "net/builders.hpp"
#include "report/table.hpp"

int main(int argc, char** argv) {
  using quora::core::AvailabilityCurve;
  using quora::core::OptResult;
  using quora::report::TextTable;

  const quora::bench::RunScale scale = quora::bench::parse_args(argc, argv);

  std::cout << "== Optimizer ablation: exhaustive vs golden-section vs Brent ==\n\n";
  TextTable table({"topology", "alpha", "exh q_r", "gold q_r", "brent q_r",
                   "exh evals", "gold evals", "brent evals", "gold gap",
                   "brent gap"});

  int golden_exact = 0;
  int brent_exact = 0;
  int cells = 0;
  double worst_golden_gap = 0.0;
  double worst_brent_gap = 0.0;

  for (const std::uint32_t chords : {0u, 1u, 2u, 4u, 16u, 256u}) {
    const quora::net::Topology topo = quora::net::make_ring_with_chords(101, chords);
    const auto curves = quora::metrics::measure_curves(
        topo, quora::bench::to_config(scale), quora::bench::to_policy(scale));
    const AvailabilityCurve curve = curves.pooled_curve();

    for (const double alpha : curves.alphas) {
      const OptResult exh = quora::core::optimize_exhaustive(curve, alpha);
      const OptResult gold = quora::core::optimize_golden(curve, alpha);
      const OptResult brent = quora::core::optimize_brent(curve, alpha);
      const double gold_gap = exh.value - gold.value;
      const double brent_gap = exh.value - brent.value;
      golden_exact += gold_gap <= 1e-12;
      brent_exact += brent_gap <= 1e-12;
      worst_golden_gap = std::max(worst_golden_gap, gold_gap);
      worst_brent_gap = std::max(worst_brent_gap, brent_gap);
      ++cells;

      table.add_row({"topology-" + std::to_string(chords), TextTable::fmt(alpha, 2),
                     std::to_string(exh.q_r()), std::to_string(gold.q_r()),
                     std::to_string(brent.q_r()), std::to_string(exh.evaluations),
                     std::to_string(gold.evaluations),
                     std::to_string(brent.evaluations), TextTable::fmt(gold_gap, 5),
                     TextTable::fmt(brent_gap, 5)});
    }
    table.add_separator();
  }
  table.print(std::cout);

  std::cout << "\ngolden exact: " << golden_exact << "/" << cells
            << " (worst availability gap " << TextTable::fmt(worst_golden_gap, 5)
            << ")   brent exact: " << brent_exact << "/" << cells
            << " (worst gap " << TextTable::fmt(worst_brent_gap, 5) << ")\n"
            << "(both probe the endpoints first, which §5.3 shows is where "
               "optima live; gaps appear only on curves with interior "
               "structure)\n";
  return 0;
}
