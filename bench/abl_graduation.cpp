// Policy ablation for dynamic reassignment: the estimator-driven
// AdaptiveReassigner (paper §4.3: re-run Figure 1 on-line) versus the
// demand-driven LadderAgent (our concrete instantiation of Herlihy-style
// quorum graduation, which the paper reviews but finds unspecified and
// unevaluated). Both act through the same QR protocol on the same event
// stream; only the decision policy differs.

#include <iostream>
#include <vector>

#include "common.hpp"
#include "core/reassign.hpp"
#include "dyn/adaptive.hpp"
#include "dyn/ladder.hpp"
#include "metrics/collectors.hpp"
#include "net/builders.hpp"
#include "quorum/quorum_spec.hpp"
#include "report/table.hpp"
#include "sim/simulator.hpp"

namespace {

using quora::metrics::ProtocolMeter;
using quora::report::TextTable;

ProtocolMeter::Decide qr_decider(quora::core::QuorumReassignment& qr) {
  return [&qr](const quora::sim::Simulator& sim, const quora::sim::AccessEvent& ev) {
    const auto type = ev.is_read ? quora::quorum::AccessType::kRead
                                 : quora::quorum::AccessType::kWrite;
    return qr.request(sim.tracker(), ev.site, type).granted;
  };
}

} // namespace

int main(int argc, char** argv) {
  const quora::bench::RunScale scale = quora::bench::parse_args(argc, argv);
  const quora::net::Topology topo = quora::net::make_ring_with_chords(101, 4);
  const quora::net::Vote total = topo.total_votes();
  quora::sim::SimConfig config = quora::bench::to_config(scale);

  quora::core::QuorumReassignment qr_est(topo, quora::quorum::majority(total));
  quora::core::QuorumReassignment qr_lad(topo, quora::quorum::majority(total));
  ProtocolMeter m_est(qr_decider(qr_est));
  ProtocolMeter m_lad(qr_decider(qr_lad));

  quora::dyn::AdaptiveReassigner::Options est_opts;
  est_opts.min_write_availability = 0.20;
  quora::dyn::AdaptiveReassigner estimator(topo, qr_est, est_opts);
  quora::dyn::LadderAgent ladder(topo, qr_lad);

  quora::sim::AccessSpec spec;
  spec.alpha = 0.9;
  quora::sim::Simulator sim(topo, config, spec, scale.seed);
  sim.run_accesses(config.warmup_accesses);
  sim.add_access_observer(&m_est);
  sim.add_access_observer(&m_lad);
  sim.add_access_observer(&estimator);
  sim.add_access_observer(&ladder);

  std::cout << "== Reassignment policy ablation: estimator vs graduation ==\n"
            << "topology-4, alternating alpha {.9, .1}, phases of "
            << config.accesses_per_batch << " accesses\n\n";

  TextTable table({"phase", "alpha", "estimator-driven", "demand-driven",
                   "installs est", "graduations"});
  const std::vector<double> phase_alphas{0.9, 0.1, 0.9, 0.1};
  std::uint64_t est_g0 = 0;
  std::uint64_t lad_g0 = 0;
  std::uint64_t est_c0 = 0;
  std::uint64_t lad_c0 = 0;
  for (std::size_t ph = 0; ph < phase_alphas.size(); ++ph) {
    sim.set_access_alpha(phase_alphas[ph]);
    sim.run_accesses(config.accesses_per_batch);
    const std::uint64_t est_granted =
        m_est.reads_granted() + m_est.writes_granted();
    const std::uint64_t lad_granted =
        m_lad.reads_granted() + m_lad.writes_granted();
    const double est_avail = static_cast<double>(est_granted - est_c0) /
                             static_cast<double>(config.accesses_per_batch);
    const double lad_avail = static_cast<double>(lad_granted - lad_c0) /
                             static_cast<double>(config.accesses_per_batch);
    table.add_row({std::to_string(ph + 1), TextTable::fmt(phase_alphas[ph], 1),
                   TextTable::fmt(est_avail, 4), TextTable::fmt(lad_avail, 4),
                   std::to_string(estimator.installs() - est_g0),
                   std::to_string(ladder.graduations() - lad_g0)});
    est_c0 = est_granted;
    lad_c0 = lad_granted;
    est_g0 = estimator.installs();
    lad_g0 = ladder.graduations();
  }
  table.add_separator();
  table.add_row({"all", "mix", TextTable::fmt(m_est.availability(), 4),
                 TextTable::fmt(m_lad.availability(), 4),
                 std::to_string(estimator.installs()),
                 std::to_string(ladder.graduations())});
  table.print(std::cout);

  std::cout << "\nladder denial totals: reads " << ladder.read_denials()
            << ", writes " << ladder.write_denials()
            << "\n(The estimator anticipates from the component-size "
               "distribution; graduation\nonly reacts to observed denials, "
               "so it trails at phase boundaries but needs\nno distribution "
               "estimate at all.)\n";
  return 0;
}
