// DESIGN.md TIME — how load-bearing is the paper's instantaneous-access
// assumption (§5.1: "no site or link can either fail or recover while an
// access request is processing")?
//
// We give each access a fixed service window and commit it only if its
// component's membership survives the window undisturbed (a conservative
// rule; see metrics/timed_meter.hpp). Duration 0 is the paper's model.
// Durations are in simulated time units, where 1 unit = one site's mean
// think time between accesses and 128 units = a component's mean
// time-to-failure (rho = 1/128).

#include <iostream>
#include <memory>
#include <vector>

#include "common.hpp"
#include "metrics/timed_meter.hpp"
#include "net/builders.hpp"
#include "quorum/quorum_spec.hpp"
#include "report/table.hpp"
#include "sim/simulator.hpp"

int main(int argc, char** argv) {
  using quora::metrics::TimedProtocolMeter;
  using quora::report::TextTable;

  const quora::bench::RunScale scale = quora::bench::parse_args(argc, argv);
  const quora::net::Topology topo = quora::net::make_ring_with_chords(101, 4);
  const quora::net::Vote total = topo.total_votes();
  quora::sim::SimConfig config = quora::bench::to_config(scale);

  const std::vector<double> durations{0.0, 0.01, 0.05, 0.25, 1.0, 4.0};
  struct Protocol {
    const char* name;
    quora::quorum::QuorumSpec spec;
  };
  const std::vector<Protocol> protocols{
      {"majority", quora::quorum::majority(total)},
      {"ROWA", quora::quorum::read_one_write_all(total)},
      {"q_r=10", quora::quorum::from_read_quorum(total, 10)},
  };

  std::cout << "== Access-duration ablation (topology-4, alpha=.5) ==\n"
            << "commit rule: quorum at submission AND component membership "
               "undisturbed for the window\n\n";

  // One meter per (protocol, duration), all on one event stream.
  std::vector<std::unique_ptr<TimedProtocolMeter>> meters;
  quora::sim::AccessSpec spec;
  quora::sim::Simulator sim(topo, config, spec, scale.seed);
  sim.run_accesses(config.warmup_accesses);
  for (const Protocol& p : protocols) {
    for (const double d : durations) {
      meters.push_back(std::make_unique<TimedProtocolMeter>(p.spec, d));
      sim.add_access_observer(meters.back().get());
      sim.add_network_observer(meters.back().get());
    }
  }
  sim.run_accesses(config.accesses_per_batch);
  for (auto& m : meters) m->settle_until(sim.now() + 1e9);

  std::vector<std::string> header{"protocol"};
  for (const double d : durations) header.push_back("d=" + TextTable::fmt(d, 2));
  TextTable table(std::move(header));
  std::size_t idx = 0;
  for (const Protocol& p : protocols) {
    std::vector<std::string> row{p.name};
    for (std::size_t di = 0; di < durations.size(); ++di) {
      row.push_back(TextTable::fmt(meters[idx++]->availability(), 4));
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);

  // Disturbance accounting for the longest window.
  const TimedProtocolMeter& worst = *meters[durations.size() - 1];  // majority, d max
  std::cout << "\nmajority @ d=" << durations.back() << ": "
            << worst.aborted_by_disturbance()
            << " quorum-satisfying accesses aborted by mid-window membership "
               "changes out of "
            << worst.completed() << "\n"
            << "(at d = 0.01 — accesses 100x faster than think time — the "
               "instantaneous\nmodel is accurate to ~1 point; by d = 0.25 "
               "every protocol has lost a third.\nNote the inversion at "
               "large d: majority dies before ROWA, because its grants\n"
               "come from giant components whose membership churns "
               "constantly, while a\nsmall read component can sit out the "
               "window untouched. The paper's\nassumption is safe for its "
               "regime; this table shows where it stops being.)\n";
  return 0;
}
