// DESIGN.md MSGV — the message-level reference implementation vs the
// paper's instantaneous oracle. Same stochastic model (Poisson
// failures/repairs/accesses at the paper's rates), but accesses are real
// two-phase coordinations: flooded vote requests, write-vote leases,
// commits, acks, aborts, timeouts, and messages that die with links.
//
// As per-hop latency -> 0 the implementation converges to the oracle for
// READS; for WRITES an irreducible gap remains — the serialization cost
// of vote leases, which any correct implementation must pay and the
// instantaneous abstraction cannot represent. The sweep also shows how
// fast reality leaves the abstraction as the network slows.

#include <array>
#include <iostream>
#include <string>
#include <vector>

#include "common.hpp"
#include "msg/cluster.hpp"
#include "net/builders.hpp"
#include "report/table.hpp"

int main(int argc, char** argv) {
  using quora::report::TextTable;

  const quora::bench::RunScale scale = quora::bench::parse_args(argc, argv);
  const quora::net::Topology topo = quora::net::make_ring_with_chords(25, 4);

  std::cout << "== Message-level protocol vs the instantaneous oracle ==\n"
            << "ring+4 chords, 25 sites, q_r=8/q_w=18, alpha=.5, paper "
               "failure model\n\n";

  TextTable table({"hop latency", "impl A", "oracle A", "read gap",
                   "write gap", "msgs/access", "mean decide latency"});
  // Denial breakdown by reason, one row per latency point: WHY the
  // implementation fell short of the oracle, not just by how much.
  TextTable denials({"hop latency", "origin-down", "timeout", "no-quorum",
                     "coordinator-crash", "abandoned"});
  const std::uint64_t accesses =
      std::max<std::uint64_t>(4'000, scale.batch / 25);

  for (const double latency : {0.0005, 0.005, 0.02, 0.1, 0.5}) {
    quora::msg::Cluster::Params params;
    params.spec = quora::quorum::from_read_quorum(25, 8);
    params.mean_hop_latency = latency;
    params.phase_timeout = std::max(1.0, 30.0 * latency);
    params.alpha = 0.5;
    quora::msg::Cluster cluster(topo, params, scale.seed);
    cluster.run_decided_accesses(accesses);

    double total_latency = 0.0;
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t r_granted = 0;
    std::uint64_t w_granted = 0;
    std::uint64_t r_oracle = 0;
    std::uint64_t w_oracle = 0;
    std::array<std::uint64_t, quora::msg::kDenyReasonCount> by_reason{};
    for (const auto& o : cluster.outcomes()) {
      total_latency += o.decide_time - o.submit_time;
      if (!o.granted) ++by_reason[static_cast<std::size_t>(o.deny_reason)];
      if (o.is_read) {
        ++reads;
        r_granted += o.granted;
        r_oracle += o.oracle_granted;
      } else {
        ++writes;
        w_granted += o.granted;
        w_oracle += o.oracle_granted;
      }
    }
    const auto gap = [](std::uint64_t oracle, std::uint64_t impl,
                        std::uint64_t n) {
      return n == 0 ? 0.0
                    : static_cast<double>(oracle - impl) / static_cast<double>(n);
    };
    table.add_row(
        {TextTable::fmt(latency, 4), TextTable::fmt(cluster.availability(), 4),
         TextTable::fmt(cluster.oracle_availability(), 4),
         TextTable::fmt(gap(r_oracle, r_granted, reads), 4),
         TextTable::fmt(gap(w_oracle, w_granted, writes), 4),
         TextTable::fmt(static_cast<double>(cluster.messages_sent()) /
                            static_cast<double>(cluster.outcomes().size()),
                        1),
         TextTable::fmt(total_latency /
                            static_cast<double>(cluster.outcomes().size()),
                        4)});
    using quora::msg::DenyReason;
    const auto count = [&](DenyReason r) {
      return std::to_string(by_reason[static_cast<std::size_t>(r)]);
    };
    denials.add_row({TextTable::fmt(latency, 4), count(DenyReason::kOriginDown),
                     count(DenyReason::kTimeout), count(DenyReason::kNoQuorum),
                     count(DenyReason::kCoordinatorCrash),
                     count(DenyReason::kAbandoned)});
  }
  table.print(std::cout);
  std::cout << "\nDenials by reason (counts over " << accesses
            << " decided accesses per row):\n";
  denials.print(std::cout);

  std::cout << "\n(The READ gap vanishes as latency -> 0: for reads the "
               "paper's oracle is\nexactly the limit of the real protocol. "
               "The WRITE gap does not vanish —\nconcurrent writes must "
               "serialize on vote leases in any correct\nimplementation, a "
               "mutual-exclusion cost the instantaneous model cannot\nsee. "
               "At higher latencies both gaps grow with timeouts and "
               "mid-flight\nmessage loss.)\n";
  return 0;
}
