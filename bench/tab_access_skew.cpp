// Extension experiment (DESIGN.md SKEW): non-uniform access distributions.
// The paper's algorithm takes per-site submission distributions r_i / w_i
// (Figure 1, steps 1-2: r(v) = sum_i r_i f_i(v)) but its simulations only
// exercise the uniform case, where r = w and every site's view matters
// equally. Here the access stream is concentrated on a well-connected
// cluster vs the topology's periphery, and the optimal assignment moves.
//
// The network is deliberately asymmetric — a dense HQ cluster (complete
// graph) bridged to a sparse chain of branch offices — so a site's f_i
// depends strongly on where it sits: HQ sites almost always see the whole
// cluster's votes, chain sites mostly see small fragments. Concentrating
// reads on one side or the other reshapes r(v) and moves the optimum.

#include <iostream>
#include <vector>

#include "common.hpp"
#include "core/optimize.hpp"
#include "net/builders.hpp"
#include "report/table.hpp"

namespace {

/// Weights concentrating `mass` of the accesses on `hot` sites (uniform
/// inside each group).
std::vector<double> skewed_weights(std::uint32_t n,
                                   const std::vector<quora::net::SiteId>& hot,
                                   double mass) {
  std::vector<double> w(n, (1.0 - mass) / static_cast<double>(n - hot.size()));
  for (const quora::net::SiteId s : hot) {
    w[s] = mass / static_cast<double>(hot.size());
  }
  return w;
}

} // namespace

int main(int argc, char** argv) {
  using quora::core::AvailabilityCurve;
  using quora::report::TextTable;

  const quora::bench::RunScale scale = quora::bench::parse_args(argc, argv);

  // HQ: sites 0..11, complete. Branches: sites 12..23, a chain hanging
  // off HQ site 0.
  constexpr std::uint32_t kHq = 12;
  constexpr std::uint32_t kAll = 24;
  std::vector<quora::net::Link> links;
  for (quora::net::SiteId a = 0; a < kHq; ++a) {
    for (quora::net::SiteId b = a + 1; b < kHq; ++b) links.push_back({a, b});
  }
  links.push_back({0, kHq});
  for (quora::net::SiteId s = kHq; s + 1 < kAll; ++s) links.push_back({s, s + 1});
  const quora::net::Topology topo("hq-plus-branches", kAll, links);

  std::vector<quora::net::SiteId> hub_sites;
  for (quora::net::SiteId s = 0; s < kHq; ++s) hub_sites.push_back(s);
  std::vector<quora::net::SiteId> edge_sites;
  for (quora::net::SiteId s = kHq; s < kAll; ++s) edge_sites.push_back(s);

  struct Scenario {
    const char* label;
    std::vector<double> read_weights;   // empty = uniform
    std::vector<double> write_weights;  // empty = uniform
  };
  const std::vector<Scenario> scenarios{
      {"uniform (the paper's case)", {}, {}},
      {"reads 90% at HQ",
       skewed_weights(kAll, hub_sites, 0.9),
       {}},
      {"reads 90% at branches",
       skewed_weights(kAll, edge_sites, 0.9),
       {}},
      {"reads at HQ, writes at branches",
       skewed_weights(kAll, hub_sites, 0.9),
       skewed_weights(kAll, edge_sites, 0.9)},
  };

  std::cout << "== Non-uniform access distributions (Figure 1 steps 1-2) ==\n"
            << "HQ: complete-" << kHq << " cluster; branches: chain of "
            << kAll - kHq << " off HQ site 0; T = " << kAll << "\n\n";

  TextTable table({"scenario", "alpha", "opt q_r", "A(opt)",
                   "A at uniform-opt q_r", "cost of ignoring skew"});
  quora::metrics::MeasurePolicy base_policy = quora::bench::to_policy(scale);
  base_policy.alphas = {0.5, 0.75};

  // Uniform reference optima per alpha, computed first.
  quora::metrics::MeasurePolicy uniform_policy = base_policy;
  const auto uniform = quora::metrics::measure_curves(
      topo, quora::bench::to_config(scale), uniform_policy);
  const AvailabilityCurve uniform_curve = uniform.pooled_curve();

  for (const Scenario& sc : scenarios) {
    quora::metrics::MeasurePolicy policy = base_policy;
    policy.read_weights = sc.read_weights;
    policy.write_weights = sc.write_weights;
    const auto curves = quora::metrics::measure_curves(
        topo, quora::bench::to_config(scale), policy);
    const AvailabilityCurve curve = curves.pooled_curve();
    for (const double alpha : base_policy.alphas) {
      const auto best = quora::core::optimize_exhaustive(curve, alpha);
      const auto uniform_best = quora::core::optimize_exhaustive(uniform_curve, alpha);
      const double at_uniform_choice =
          curve.availability(alpha, uniform_best.q_r());
      table.add_row({sc.label, TextTable::fmt(alpha, 2),
                     std::to_string(best.q_r()), TextTable::fmt(best.value, 4),
                     TextTable::fmt(at_uniform_choice, 4),
                     TextTable::fmt(best.value - at_uniform_choice, 4)});
    }
    table.add_separator();
  }
  table.print(std::cout);
  std::cout << "\n(\"cost of ignoring skew\" = availability lost by installing "
               "the uniform-\nworkload optimum when the real workload is "
               "skewed — the gap the r_i/w_i\nmachinery exists to close.)\n";
  return 0;
}
