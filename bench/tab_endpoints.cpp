// DESIGN.md ENDP — the three structural claims of §5.3, checked over every
// topology and alpha:
//
//  (1) all alpha-curves of a topology converge at q_r = floor(T/2)
//      (q_r and q_w nearly equal there, so reads and writes are treated
//      alike);
//  (2) availability at q_r = 1 is topology-independent and equals
//      0.96 * alpha (a read succeeds iff its submitting site is up);
//  (3) every curve attains its maximum at an endpoint of the q_r range —
//      with the paper's sole exception, Topology 16 at alpha = .75.

#include <cmath>
#include <iostream>
#include <vector>

#include "common.hpp"
#include "core/optimize.hpp"
#include "net/builders.hpp"
#include "report/table.hpp"

int main(int argc, char** argv) {
  using quora::core::AvailabilityCurve;
  using quora::report::TextTable;

  const quora::bench::RunScale scale = quora::bench::parse_args(argc, argv);
  const std::vector<std::uint32_t> chord_counts{0, 1, 2, 4, 16, 256};

  std::cout << "== Endpoint structure of the availability curves (paper 5.3) ==\n\n";

  TextTable conv({"topology", "max spread at q_r=50", "spread at q_r=1"});
  TextTable rowa({"topology", "alpha", "A(q_r=1)", "0.96*alpha", "|diff|"});
  TextTable ends({"topology", "alpha", "argmax q_r", "interior advantage",
                  "endpoint max?"});

  int interior_maxima = 0;
  for (const std::uint32_t chords : chord_counts) {
    const quora::net::Topology topo = quora::net::make_ring_with_chords(101, chords);
    const auto curves = quora::metrics::measure_curves(
        topo, quora::bench::to_config(scale), quora::bench::to_policy(scale));
    const AvailabilityCurve curve = curves.pooled_curve();
    const quora::net::Vote max_q = curve.max_read_quorum();
    const std::string name = "topology-" + std::to_string(chords);

    // (1) convergence: spread of the alpha-curves at the majority end
    // vs the (maximal) spread at q_r = 1.
    double lo50 = 1.0;
    double hi50 = 0.0;
    double lo1 = 1.0;
    double hi1 = 0.0;
    for (const double alpha : curves.alphas) {
      const double a50 = curve.availability(alpha, max_q);
      const double a1 = curve.availability(alpha, 1);
      lo50 = std::min(lo50, a50);
      hi50 = std::max(hi50, a50);
      lo1 = std::min(lo1, a1);
      hi1 = std::max(hi1, a1);
    }
    conv.add_row({name, TextTable::fmt(hi50 - lo50, 4), TextTable::fmt(hi1 - lo1, 4)});

    for (const double alpha : curves.alphas) {
      // (2) the q_r = 1 availability law.
      const double a1 = curve.availability(alpha, 1);
      const double predicted = 0.96 * alpha;
      rowa.add_row({name, TextTable::fmt(alpha, 2), TextTable::fmt(a1, 4),
                    TextTable::fmt(predicted, 4),
                    TextTable::fmt(std::abs(a1 - predicted), 4)});

      // (3) endpoint maxima. Dense topologies produce long plateaus, so
      // an interior argmax that merely *ties* an endpoint (within the
      // measurement CI) still supports the paper's claim; what matters is
      // whether the interior strictly beats both endpoints.
      const auto best = quora::core::optimize_exhaustive(curve, alpha);
      const double endpoint_best =
          std::max(curve.availability(alpha, 1), curve.availability(alpha, max_q));
      const double advantage = best.value - endpoint_best;
      const bool endpoint_max = advantage <= curves.max_half_width;
      if (!endpoint_max) ++interior_maxima;
      ends.add_row({name, TextTable::fmt(alpha, 2), std::to_string(best.q_r()),
                    TextTable::fmt(advantage, 4),
                    endpoint_max ? "yes" : "NO (interior)"});
    }
  }

  std::cout << "(1) curve convergence at the majority endpoint:\n";
  conv.print(std::cout);
  std::cout << "\n(2) A(alpha, q_r=1) = 0.96*alpha, independent of topology:\n";
  rowa.print(std::cout);
  std::cout << "\n(3) maxima at endpoints, within the measurement CI "
               "(paper allows one exception, topology 16 at alpha=.75):\n";
  ends.print(std::cout);
  std::cout << "\nstrict interior maxima found: " << interior_maxima
            << " (paper: 1, at topology 16, alpha=.75)\n";
  return 0;
}
