// DESIGN.md ESTM — quality of the on-line estimator of §4.2 (an ablation
// the paper argues qualitatively; we quantify it).
//
// On the ring, where the analytic f is available, we feed the estimator
// growing sample budgets and report: total-variation distance to the
// truth, the optimal q_r induced by the estimate, and the availability
// *regret* of acting on the estimate (truth evaluated at the estimated
// optimum minus truth at the true optimum). Also checks footnote 4's
// p*A' = A identity relating operational-site-conditioned availability to
// the unconditioned one.

#include <cmath>
#include <iostream>

#include "common.hpp"
#include "core/availability.hpp"
#include "core/component_dist.hpp"
#include "core/optimize.hpp"
#include "metrics/collectors.hpp"
#include "net/builders.hpp"
#include "report/table.hpp"
#include "sim/simulator.hpp"

int main(int argc, char** argv) {
  using quora::core::AvailabilityCurve;
  using quora::core::VotePdf;
  using quora::report::TextTable;

  const quora::bench::RunScale scale = quora::bench::parse_args(argc, argv);
  const quora::net::Topology topo = quora::net::make_ring(101);
  const VotePdf truth = quora::core::ring_site_pdf(101, 0.96, 0.96);
  const AvailabilityCurve truth_curve(truth);
  constexpr double kAlpha = 0.75;
  const auto true_best = quora::core::optimize_exhaustive(truth_curve, kAlpha);

  std::cout << "== On-line estimator ablation (ring n=101, alpha=0.75) ==\n";
  std::cout << "true optimum: q_r=" << true_best.q_r()
            << "  A=" << TextTable::fmt(true_best.value, 4) << "\n\n";

  quora::sim::SimConfig config = quora::bench::to_config(scale);
  quora::sim::AccessSpec spec;
  quora::sim::Simulator sim(topo, config, spec, scale.seed);
  sim.run_accesses(config.warmup_accesses);

  quora::metrics::VotesSeenCollector collector(topo);
  sim.add_access_observer(&collector);

  TextTable table({"samples", "TV to analytic", "est opt q_r", "regret",
                   "max |p*A' - A|"});
  std::uint64_t run = 0;
  for (const std::uint64_t target : {5'000ULL, 20'000ULL, 80'000ULL, 320'000ULL,
                                     1'280'000ULL}) {
    sim.run_accesses(target - run);
    run = target;
    const VotePdf estimate = collector.combined_pdf();

    double tv = 0.0;
    for (std::size_t i = 0; i < truth.size(); ++i) {
      tv += std::abs(truth[i] - estimate[i]);
    }
    tv *= 0.5;

    const AvailabilityCurve est_curve(estimate);
    const auto est_best = quora::core::optimize_exhaustive(est_curve, kAlpha);
    const double regret =
        true_best.value - truth_curve.availability(kAlpha, est_best.q_r());

    // Footnote 4: with uniform access and site reliability p, the
    // operational-site-conditioned availability A' satisfies p*A' = A.
    double max_identity_gap = 0.0;
    for (quora::net::Vote q = 1; q <= est_curve.max_read_quorum(); ++q) {
      const double a = est_curve.availability(kAlpha, q);
      const double a_cond = est_curve.conditional_on_up(kAlpha, q);
      const double p_up = 1.0 - estimate[0];  // measured P(origin up)
      max_identity_gap = std::max(max_identity_gap, std::abs(p_up * a_cond - a));
    }

    table.add_row({std::to_string(target), TextTable::fmt(tv, 4),
                   std::to_string(est_best.q_r()), TextTable::fmt(regret, 5),
                   TextTable::fmt(max_identity_gap, 10)});
  }
  table.print(std::cout);
  std::cout << "\n(regret -> 0 long before TV does: the argmax is far easier "
               "to learn than the density — why the paper's cheap estimator "
               "suffices. The identity column is exact by construction and "
               "checks the footnote-4 algebra.)\n";
  return 0;
}
