#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "metrics/experiment.hpp"
#include "net/topology.hpp"
#include "sim/config.hpp"

namespace quora::bench {

/// Scale knobs shared by every experiment binary.
///
/// Defaults are a *reduced* but shape-preserving configuration chosen so
/// the whole suite runs in minutes on one core; `--paper` restores the
/// paper's exact protocol (100k warm-up, 1M-access batches, 5-18 batches
/// to a ±0.5% CI), which is what EXPERIMENTS.md numbers were produced
/// with where stated.
struct RunScale {
  std::uint64_t warmup = 20'000;
  std::uint64_t batch = 150'000;
  std::uint32_t min_batches = 5;
  std::uint32_t max_batches = 8;
  double ci_target = 0.005;
  std::uint64_t seed = 0xC0FFEEULL;
  unsigned threads = 0;  // 0 => hardware
  unsigned stride = 7;   // q_r row thinning in printed tables
  std::optional<std::string> csv_path;
  std::optional<std::string> svg_path;
  /// When set, run_figure also appends a timing record for the figure to
  /// this file, in the same "quora-bench/1" JSON schema tools/quora_bench
  /// emits, so scripts/bench_compare.py can diff experiment runs too.
  std::optional<std::string> json_path;
  /// Observability outputs (docs/OBSERVABILITY.md). `--trace PATH`
  /// records the stream-0 batch simulator's structured event trace
  /// (Chrome trace_event JSON when PATH ends in .json, the compact text
  /// transcript otherwise); `--metrics PATH` dumps the shared metrics
  /// registry, accumulated across every figure the binary ran.
  std::optional<std::string> trace_path;
  std::optional<std::string> metrics_path;
  bool paper_scale = false;
};

/// Parses --paper, --warmup, --batch, --min-batches, --max-batches, --ci,
/// --seed, --threads, --stride, --csv PATH, --svg PATH, --json PATH,
/// --trace PATH, --metrics PATH, --help. Exits on --help or a bad flag.
/// Numeric flags are validated strictly (full-string parse, range checks)
/// with a clear diagnostic — a typo'd `--batch 40k` aborts instead of
/// silently truncating.
RunScale parse_args(int argc, char** argv);

sim::SimConfig to_config(const RunScale& scale);
metrics::MeasurePolicy to_policy(const RunScale& scale);

/// Shared driver for the figure benches: measure the availability curves
/// of `topo` under the paper's protocol, print the table + optima footer,
/// optionally dump CSV. Returns the measured curves for extra reporting.
metrics::CurveResult run_figure(const net::Topology& topo, const std::string& title,
                                const RunScale& scale);

} // namespace quora::bench
