#include "common.hpp"

#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <optional>
#include <string_view>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "report/curve_report.hpp"
#include "report/svg_plot.hpp"

namespace quora::bench {
namespace {

[[noreturn]] void usage(const char* prog, int code) {
  std::cout
      << "usage: " << prog << " [options]\n"
      << "  --paper            full paper protocol (100k warmup, 1M batches, 5-18 to +-0.5% CI)\n"
      << "  --warmup N         warm-up accesses per batch (default 20000)\n"
      << "  --batch N          measured accesses per batch (default 150000)\n"
      << "  --min-batches N    minimum batches (default 5)\n"
      << "  --max-batches N    maximum batches (default 8)\n"
      << "  --ci X             target CI half-width (default 0.005)\n"
      << "  --seed N           root RNG seed (default 0xC0FFEE)\n"
      << "  --threads N        worker threads (default: hardware)\n"
      << "  --stride N         q_r row stride in printed tables (default 7)\n"
      << "  --csv PATH         also write the full series as CSV\n"
      << "  --svg PATH         also render the figure as an SVG plot\n"
      << "  --json PATH        also write figure timings (quora-bench/1 schema)\n"
      << "  --trace PATH       record a structured event trace of the stream-0 batch\n"
      << "                     (.json => Chrome trace_event, else compact text)\n"
      << "  --metrics PATH     dump the metrics registry (all batches, all figures)\n"
      << "  --help             this text\n";
  std::exit(code);
}

[[noreturn]] void bad_value(const char* prog, std::string_view flag,
                            std::string_view value, const char* expected) {
  std::cerr << prog << ": " << flag << " expects " << expected << ", got \""
            << value << "\"\n";
  std::exit(2);
}

/// Strict unsigned parse: the whole token must be a decimal (or, with
/// base 0, 0x-prefixed) integer inside [min, max].
std::uint64_t parse_uint(const char* prog, std::string_view flag,
                         std::string_view value, std::uint64_t min,
                         std::uint64_t max, const char* expected,
                         int base = 10) {
  const std::string token(value);
  char* end = nullptr;
  errno = 0;
  const unsigned long long parsed = std::strtoull(token.c_str(), &end, base);
  if (token.empty() || end != token.c_str() + token.size() || errno == ERANGE ||
      token.front() == '-') {
    bad_value(prog, flag, value, expected);
  }
  if (parsed < min || parsed > max) bad_value(prog, flag, value, expected);
  return parsed;
}

double parse_fraction(const char* prog, std::string_view flag,
                      std::string_view value, const char* expected) {
  const std::string token(value);
  char* end = nullptr;
  errno = 0;
  const double parsed = std::strtod(token.c_str(), &end);
  if (token.empty() || end != token.c_str() + token.size() || errno == ERANGE ||
      !(parsed > 0.0 && parsed <= 1.0)) {
    bad_value(prog, flag, value, expected);
  }
  return parsed;
}

/// Append one case to a quora-bench/1 JSON report, creating the file (and
/// re-writing prior cases) on each call so partially-finished multi-figure
/// runs still leave a valid document behind.
struct JsonReport {
  struct Case {
    std::string name;
    std::uint64_t items = 0;
    double wall_s = 0.0;
  };
  std::vector<Case> cases;

  void write(const std::string& path, std::uint64_t seed) const {
    std::ofstream out(path);
    out << "{\n  \"schema\": \"quora-bench/1\",\n"
        << "  \"revision\": \"\",\n  \"mode\": \"figure\",\n"
        << "  \"seed\": " << seed << ",\n  \"cases\": [";
    for (std::size_t i = 0; i < cases.size(); ++i) {
      const Case& c = cases[i];
      const double ns =
          c.items > 0 ? c.wall_s * 1e9 / static_cast<double>(c.items) : 0.0;
      const double ops = c.wall_s > 0.0
                             ? static_cast<double>(c.items) / c.wall_s
                             : 0.0;
      out << (i == 0 ? "\n" : ",\n") << "    {\"name\": \"" << c.name
          << "\", \"items\": " << c.items << ", \"wall_s\": " << c.wall_s
          << ", \"ns_per_op\": " << ns << ", \"ops_per_sec\": " << ops << "}";
    }
    out << "\n  ]\n}\n";
  }
};

JsonReport g_json_report;

// Observability sinks shared across every figure a binary runs: the
// registry accumulates, the trace ring keeps the most recent window.
// Created on first use so unflagged runs pay nothing.
std::optional<obs::Registry> g_obs_registry;
std::optional<obs::TraceRecorder> g_obs_trace;

/// Figure titles become case names: lowercase, punctuation to '-'.
std::string slugify(const std::string& title) {
  std::string slug;
  for (const char ch : title) {
    const auto c = static_cast<unsigned char>(ch);
    if (std::isalnum(c)) {
      slug.push_back(static_cast<char>(std::tolower(c)));
    } else if (!slug.empty() && slug.back() != '-') {
      slug.push_back('-');
    }
  }
  while (!slug.empty() && slug.back() == '-') slug.pop_back();
  return slug;
}

} // namespace

RunScale parse_args(int argc, char** argv) {
  RunScale scale;
  bool min_batches_set = false;
  const auto need_value = [&](int& i) -> std::string_view {
    if (i + 1 >= argc) {
      std::cerr << argv[0] << ": missing value for " << argv[i] << '\n';
      std::exit(2);
    }
    return argv[++i];
  };

  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--paper") {
      scale.paper_scale = true;
      scale.warmup = 100'000;
      scale.batch = 1'000'000;
      scale.min_batches = 5;
      scale.max_batches = 18;
      scale.ci_target = 0.005;
    } else if (arg == "--warmup") {
      scale.warmup = parse_uint(argv[0], arg, need_value(i), 0, 1'000'000'000,
                                "an access count in [0, 1e9]");
    } else if (arg == "--batch") {
      scale.batch = parse_uint(argv[0], arg, need_value(i), 1, 1'000'000'000,
                               "an access count in [1, 1e9]");
    } else if (arg == "--min-batches") {
      scale.min_batches = static_cast<std::uint32_t>(parse_uint(
          argv[0], arg, need_value(i), 1, 100'000, "a batch count in [1, 1e5]"));
      min_batches_set = true;
    } else if (arg == "--max-batches") {
      scale.max_batches = static_cast<std::uint32_t>(parse_uint(
          argv[0], arg, need_value(i), 1, 100'000, "a batch count in [1, 1e5]"));
    } else if (arg == "--ci") {
      scale.ci_target = parse_fraction(argv[0], arg, need_value(i),
                                       "a half-width in (0, 1]");
    } else if (arg == "--seed") {
      scale.seed = parse_uint(argv[0], arg, need_value(i), 0,
                              ~std::uint64_t{0}, "a 64-bit seed", 0);
    } else if (arg == "--threads") {
      // 0 means "use the hardware count"; cap guards absurd fan-out from
      // a typo'd value reaching std::thread.
      scale.threads = static_cast<unsigned>(parse_uint(
          argv[0], arg, need_value(i), 0, 4096, "a thread count in [0, 4096]"));
    } else if (arg == "--stride") {
      scale.stride = static_cast<unsigned>(parse_uint(
          argv[0], arg, need_value(i), 1, 1000, "a row stride in [1, 1000]"));
    } else if (arg == "--csv") {
      scale.csv_path = std::string(need_value(i));
    } else if (arg == "--svg") {
      scale.svg_path = std::string(need_value(i));
    } else if (arg == "--json") {
      scale.json_path = std::string(need_value(i));
    } else if (arg == "--trace") {
      scale.trace_path = std::string(need_value(i));
    } else if (arg == "--metrics") {
      scale.metrics_path = std::string(need_value(i));
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0], 0);
    } else {
      std::cerr << argv[0] << ": unknown option " << arg << '\n';
      usage(argv[0], 2);
    }
  }
  if (scale.max_batches < scale.min_batches) {
    if (min_batches_set) {
      std::cerr << argv[0] << ": --max-batches (" << scale.max_batches
                << ") must be >= --min-batches (" << scale.min_batches << ")\n";
      std::exit(2);
    }
    // Only the cap was given: shrink the default floor to meet it, as the
    // pre-validation parser effectively did.
    scale.min_batches = scale.max_batches;
  }
  return scale;
}

sim::SimConfig to_config(const RunScale& scale) {
  sim::SimConfig config;
  config.warmup_accesses = scale.warmup;
  config.accesses_per_batch = scale.batch;
  return config;  // stochastic parameters stay at the paper's values
}

metrics::MeasurePolicy to_policy(const RunScale& scale) {
  metrics::MeasurePolicy policy;
  policy.seed = scale.seed;
  policy.threads = scale.threads;
  policy.batch.min_batches = scale.min_batches;
  policy.batch.max_batches = scale.max_batches;
  policy.batch.target_half_width = scale.ci_target;
  return policy;
}

metrics::CurveResult run_figure(const net::Topology& topo, const std::string& title,
                                const RunScale& scale) {
  std::cout << "== " << title << " ==\n";
  metrics::MeasurePolicy policy = to_policy(scale);
  if ((scale.trace_path || scale.metrics_path) && !obs::kEnabled) {
    std::cerr << "note: built with QUORA_OBS=OFF; --trace/--metrics output "
                 "will be empty\n";
  }
  if (scale.metrics_path) {
    if (!g_obs_registry) g_obs_registry.emplace();
    policy.metrics = &*g_obs_registry;
  }
  if (scale.trace_path) {
    if (!g_obs_trace) g_obs_trace.emplace();
    policy.trace = &*g_obs_trace;
  }
  const auto t0 = std::chrono::steady_clock::now();
  const metrics::CurveResult result =
      metrics::measure_curves(topo, to_config(scale), policy);
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  if (scale.json_path) {
    // One case per figure; items = measured accesses (warm-up excluded),
    // so ns_per_op is directly comparable across scale settings.
    g_json_report.cases.push_back(JsonReport::Case{
        slugify(title),
        static_cast<std::uint64_t>(result.batches) * scale.batch, wall_s});
    g_json_report.write(*scale.json_path, scale.seed);
    std::cout << "json written to " << *scale.json_path << '\n';
  }
  report::print_curve_table(std::cout, result, scale.stride);
  if (scale.csv_path) {
    std::ofstream out(*scale.csv_path);
    report::write_curve_csv(out, result);
    std::cout << "csv written to " << *scale.csv_path << '\n';
  }
  if (scale.svg_path) {
    report::SvgOptions svg;
    svg.title = title;
    report::write_curve_svg_file(*scale.svg_path, result, svg);
    std::cout << "svg written to " << *scale.svg_path << '\n';
  }
  // Rewritten after every figure, like the JSON report, so an interrupted
  // multi-figure run still leaves valid files behind.
  if (scale.metrics_path) {
    obs::write_metrics_file(*g_obs_registry, *scale.metrics_path);
    std::cout << "metrics written to " << *scale.metrics_path << '\n';
  }
  if (scale.trace_path) {
    obs::write_trace_file(*g_obs_trace, *scale.trace_path);
    std::cout << "trace written to " << *scale.trace_path << '\n';
  }
  std::cout << '\n';
  return result;
}

} // namespace quora::bench
