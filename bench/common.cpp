#include "common.hpp"

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string_view>

#include "report/curve_report.hpp"
#include "report/svg_plot.hpp"

namespace quora::bench {
namespace {

[[noreturn]] void usage(const char* prog, int code) {
  std::cout
      << "usage: " << prog << " [options]\n"
      << "  --paper            full paper protocol (100k warmup, 1M batches, 5-18 to +-0.5% CI)\n"
      << "  --warmup N         warm-up accesses per batch (default 20000)\n"
      << "  --batch N          measured accesses per batch (default 150000)\n"
      << "  --min-batches N    minimum batches (default 5)\n"
      << "  --max-batches N    maximum batches (default 8)\n"
      << "  --ci X             target CI half-width (default 0.005)\n"
      << "  --seed N           root RNG seed (default 0xC0FFEE)\n"
      << "  --threads N        worker threads (default: hardware)\n"
      << "  --stride N         q_r row stride in printed tables (default 7)\n"
      << "  --csv PATH         also write the full series as CSV\n"
      << "  --svg PATH         also render the figure as an SVG plot\n"
      << "  --help             this text\n";
  std::exit(code);
}

} // namespace

RunScale parse_args(int argc, char** argv) {
  RunScale scale;
  const auto need_value = [&](int& i) -> std::string_view {
    if (i + 1 >= argc) {
      std::cerr << argv[0] << ": missing value for " << argv[i] << '\n';
      std::exit(2);
    }
    return argv[++i];
  };

  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--paper") {
      scale.paper_scale = true;
      scale.warmup = 100'000;
      scale.batch = 1'000'000;
      scale.min_batches = 5;
      scale.max_batches = 18;
      scale.ci_target = 0.005;
    } else if (arg == "--warmup") {
      scale.warmup = std::strtoull(need_value(i).data(), nullptr, 10);
    } else if (arg == "--batch") {
      scale.batch = std::strtoull(need_value(i).data(), nullptr, 10);
    } else if (arg == "--min-batches") {
      scale.min_batches =
          static_cast<std::uint32_t>(std::strtoul(need_value(i).data(), nullptr, 10));
    } else if (arg == "--max-batches") {
      scale.max_batches =
          static_cast<std::uint32_t>(std::strtoul(need_value(i).data(), nullptr, 10));
    } else if (arg == "--ci") {
      scale.ci_target = std::strtod(need_value(i).data(), nullptr);
    } else if (arg == "--seed") {
      scale.seed = std::strtoull(need_value(i).data(), nullptr, 0);
    } else if (arg == "--threads") {
      scale.threads =
          static_cast<unsigned>(std::strtoul(need_value(i).data(), nullptr, 10));
    } else if (arg == "--stride") {
      scale.stride =
          static_cast<unsigned>(std::strtoul(need_value(i).data(), nullptr, 10));
    } else if (arg == "--csv") {
      scale.csv_path = std::string(need_value(i));
    } else if (arg == "--svg") {
      scale.svg_path = std::string(need_value(i));
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0], 0);
    } else {
      std::cerr << argv[0] << ": unknown option " << arg << '\n';
      usage(argv[0], 2);
    }
  }
  return scale;
}

sim::SimConfig to_config(const RunScale& scale) {
  sim::SimConfig config;
  config.warmup_accesses = scale.warmup;
  config.accesses_per_batch = scale.batch;
  return config;  // stochastic parameters stay at the paper's values
}

metrics::MeasurePolicy to_policy(const RunScale& scale) {
  metrics::MeasurePolicy policy;
  policy.seed = scale.seed;
  policy.threads = scale.threads;
  policy.batch.min_batches = scale.min_batches;
  policy.batch.max_batches = scale.max_batches;
  policy.batch.target_half_width = scale.ci_target;
  return policy;
}

metrics::CurveResult run_figure(const net::Topology& topo, const std::string& title,
                                const RunScale& scale) {
  std::cout << "== " << title << " ==\n";
  const metrics::CurveResult result =
      metrics::measure_curves(topo, to_config(scale), to_policy(scale));
  report::print_curve_table(std::cout, result, scale.stride);
  if (scale.csv_path) {
    std::ofstream out(*scale.csv_path);
    report::write_curve_csv(out, result);
    std::cout << "csv written to " << *scale.csv_path << '\n';
  }
  if (scale.svg_path) {
    report::SvgOptions svg;
    svg.title = title;
    report::write_curve_svg_file(*scale.svg_path, result, svg);
    std::cout << "svg written to " << *scale.svg_path << '\n';
  }
  std::cout << '\n';
  return result;
}

} // namespace quora::bench
