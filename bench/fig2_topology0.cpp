// Figure 2: Topology 0 (ring: 101 sites, 101 links) — availability vs q_r for alpha in {0, .25, .50, .75, 1}
// on the paper's 101-site topology with 0 chords (DESIGN.md FIG2).

#include "common.hpp"
#include "net/builders.hpp"

int main(int argc, char** argv) {
  const quora::bench::RunScale scale = quora::bench::parse_args(argc, argv);
  const quora::net::Topology topo = quora::net::make_ring_with_chords(101, 0);
  quora::bench::run_figure(topo, "Figure 2: Topology 0 (ring: 101 sites, 101 links)", scale);
  return 0;
}
