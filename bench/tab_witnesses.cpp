// Extension experiment (DESIGN.md WITN): witness replicas — the
// storage/availability trade from the dynamic-voting lineage the paper
// cites ([17], Paris & Long). Each configuration converts k data copies
// into witnesses (votes and version numbers, no data); the simulator then
// measures availability including the witness-specific refusal (quorum
// met but every newest copy is a witness).
//
// Classic expectation: a handful of witnesses costs little availability
// while cutting storage and write fan-out; converting *most* copies
// eventually bites, and it bites reads first.

#include <iostream>
#include <memory>
#include <vector>

#include "common.hpp"
#include "metrics/collectors.hpp"
#include "net/builders.hpp"
#include "quorum/quorum_spec.hpp"
#include "quorum/witness_store.hpp"
#include "report/table.hpp"
#include "sim/simulator.hpp"

namespace {

using quora::report::TextTable;

class WitnessMeter : public quora::sim::AccessObserver {
public:
  WitnessMeter(quora::quorum::WitnessStore& store, quora::quorum::QuorumSpec spec)
      : store_(&store), spec_(spec) {}

  void on_access(const quora::sim::Simulator& sim,
                 const quora::sim::AccessEvent& ev) override {
    ++total_;
    if (ev.is_read) {
      const auto r = store_->read(sim.tracker(), spec_, ev.site);
      if (r.granted && r.data_accessible) {
        ++granted_;
      } else if (r.granted) {
        ++witness_refusals_;
      }
    } else {
      if (store_->write(sim.tracker(), spec_, ev.site, counter_++).granted) {
        ++granted_;
      }
    }
  }

  double availability() const {
    return total_ == 0 ? 0.0
                       : static_cast<double>(granted_) / static_cast<double>(total_);
  }
  std::uint64_t witness_refusals() const noexcept { return witness_refusals_; }

private:
  quora::quorum::WitnessStore* store_;
  quora::quorum::QuorumSpec spec_;
  std::uint64_t total_ = 0;
  std::uint64_t granted_ = 0;
  std::uint64_t witness_refusals_ = 0;
  std::uint64_t counter_ = 1;
};

} // namespace

int main(int argc, char** argv) {
  const quora::bench::RunScale scale = quora::bench::parse_args(argc, argv);
  const quora::net::Topology topo = quora::net::make_ring_with_chords(101, 16);
  const quora::net::Vote total = topo.total_votes();
  quora::sim::SimConfig config = quora::bench::to_config(scale);
  // A harsher regime than the paper default: at 96% reliability the
  // network is almost always one big component, writes reach every copy,
  // and witnesses are free. 88% makes partitions (and stale copies, the
  // witnesses' failure mode) common enough to price.
  config.reliability = 0.93;
  const quora::quorum::QuorumSpec spec = quora::quorum::from_read_quorum(total, 40);

  std::cout << "== Witness replicas: storage vs availability (topology-16, "
               "reliability .93, q_r=40, alpha=.5) ==\n\n";

  const std::vector<std::uint32_t> witness_counts{0, 10, 25, 50, 75, 90};
  std::vector<std::unique_ptr<quora::quorum::WitnessStore>> stores;
  std::vector<std::unique_ptr<WitnessMeter>> meters;

  quora::sim::Simulator sim(topo, config, quora::sim::AccessSpec{}, scale.seed);
  sim.run_accesses(config.warmup_accesses);
  for (const std::uint32_t w : witness_counts) {
    stores.push_back(std::make_unique<quora::quorum::WitnessStore>(
        topo, quora::quorum::witness_mask_lowest_degree(topo, w)));
    meters.push_back(std::make_unique<WitnessMeter>(*stores.back(), spec));
    sim.add_access_observer(meters.back().get());
  }
  sim.run_accesses(config.accesses_per_batch);

  TextTable table({"witnesses", "data copies", "storage", "availability",
                   "witness refusals"});
  const double base = meters.front()->availability();
  for (std::size_t i = 0; i < witness_counts.size(); ++i) {
    table.add_row({std::to_string(witness_counts[i]),
                   std::to_string(stores[i]->data_copy_count()),
                   TextTable::pct(static_cast<double>(stores[i]->data_copy_count()) /
                                      static_cast<double>(topo.site_count()), 0),
                   TextTable::fmt(meters[i]->availability(), 4),
                   std::to_string(meters[i]->witness_refusals())});
  }
  table.print(std::cout);

  std::cout << "\nbaseline (all data copies): "
            << TextTable::fmt(base, 4)
            << "\n(votes and consistency are untouched — only the data's "
               "location changes.\nWitnesses pay off until newest-version "
               "copies start hiding behind them;\nthe refusal column is "
               "exactly that event.)\n";
  return 0;
}
