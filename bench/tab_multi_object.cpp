// Extension experiment (DESIGN.md MOBJ): per-object quorum assignment in a
// multi-object database. The paper optimizes a single object; with several
// objects of different read mixes sharing one network, the Figure-1
// machinery runs once per object on one shared measurement — and the win
// over a single global assignment is the sum of per-object gaps.
//
// Validation: availabilities predicted from the shared curve are checked
// against a direct simulation of the Database layer under the mixed
// workload.

#include <iostream>
#include <vector>

#include "common.hpp"
#include "core/optimize.hpp"
#include "db/database.hpp"
#include "net/builders.hpp"
#include "quorum/quorum_spec.hpp"
#include "report/table.hpp"
#include "rng/distributions.hpp"
#include "sim/simulator.hpp"

namespace {

using quora::report::TextTable;

struct Workload {
  const char* name;
  double alpha;
  double share;  // fraction of all accesses touching this object
};

/// Drives a Database under the mixed workload on a live simulator and
/// returns per-object measured availability.
class DbDriver : public quora::sim::AccessObserver {
public:
  DbDriver(quora::db::Database& db, const std::vector<Workload>& workloads,
           std::uint64_t seed)
      : db_(&db), workloads_(&workloads), gen_(seed) {}

  void on_access(const quora::sim::Simulator& sim,
                 const quora::sim::AccessEvent& ev) override {
    // Pick the object by workload share, then read/write by its alpha.
    double u = gen_.next_double();
    std::size_t object = workloads_->size() - 1;
    for (std::size_t i = 0; i < workloads_->size(); ++i) {
      if (u < (*workloads_)[i].share) {
        object = i;
        break;
      }
      u -= (*workloads_)[i].share;
    }
    const auto id = static_cast<quora::db::ObjectId>(object);
    if (quora::rng::bernoulli(gen_, (*workloads_)[object].alpha)) {
      db_->read(sim.tracker(), ev.site, id);
    } else {
      db_->write(sim.tracker(), ev.site, id, counter_++);
    }
  }

private:
  quora::db::Database* db_;
  const std::vector<Workload>* workloads_;
  quora::rng::Xoshiro256ss gen_;
  std::uint64_t counter_ = 1;
};

double measured_availability(const quora::db::Database& db,
                             quora::db::ObjectId id) {
  const auto& s = db.stats(id);
  const std::uint64_t total = s.reads + s.writes;
  return total == 0 ? 0.0
                    : static_cast<double>(s.reads_granted + s.writes_granted) /
                          static_cast<double>(total);
}

} // namespace

int main(int argc, char** argv) {
  const quora::bench::RunScale scale = quora::bench::parse_args(argc, argv);
  const quora::net::Topology topo = quora::net::make_ring_with_chords(101, 4);
  const quora::net::Vote total = topo.total_votes();

  const std::vector<Workload> workloads{
      {"catalog", 0.95, 0.5}, {"orders", 0.30, 0.3}, {"session", 0.70, 0.2}};

  std::cout << "== Per-object quorum assignment (multi-object extension) ==\n\n";

  // Shared measurement, one optimization per object.
  quora::metrics::MeasurePolicy policy = quora::bench::to_policy(scale);
  policy.alphas.clear();
  for (const Workload& w : workloads) policy.alphas.push_back(w.alpha);
  const auto curves = quora::metrics::measure_curves(
      topo, quora::bench::to_config(scale), policy);
  const auto curve = curves.pooled_curve();

  std::vector<quora::db::Database::ObjectConfig> tuned_configs;
  std::vector<quora::db::Database::ObjectConfig> majority_configs;
  std::vector<double> predicted;
  for (const Workload& w : workloads) {
    const auto best =
        quora::core::optimize_write_constrained(curve, w.alpha, 0.10)
            .value_or(quora::core::optimize_exhaustive(curve, w.alpha));
    tuned_configs.push_back({w.name, best.spec});
    majority_configs.push_back({w.name, quora::quorum::majority(total)});
    predicted.push_back(best.value);
  }

  // Validate by driving the actual Database layer inside the simulator.
  quora::db::Database tuned(topo, tuned_configs);
  quora::db::Database uniform(topo, majority_configs);
  {
    quora::sim::Simulator sim(topo, quora::bench::to_config(scale),
                              quora::sim::AccessSpec{}, scale.seed);
    sim.run_accesses(quora::bench::to_config(scale).warmup_accesses);
    DbDriver tuned_driver(tuned, workloads, scale.seed + 100);
    DbDriver uniform_driver(uniform, workloads, scale.seed + 100);
    sim.add_access_observer(&tuned_driver);
    sim.add_access_observer(&uniform_driver);
    sim.run_accesses(quora::bench::to_config(scale).accesses_per_batch);
  }

  TextTable table({"object", "alpha", "tuned q_r/q_w", "predicted A",
                   "simulated A", "majority A", "gain"});
  double weighted_gain = 0.0;
  for (std::size_t i = 0; i < workloads.size(); ++i) {
    const auto id = static_cast<quora::db::ObjectId>(i);
    const double a_tuned = measured_availability(tuned, id);
    const double a_uniform = measured_availability(uniform, id);
    weighted_gain += workloads[i].share * (a_tuned - a_uniform);
    table.add_row({workloads[i].name, TextTable::fmt(workloads[i].alpha, 2),
                   std::to_string(tuned.object_spec(id).q_r) + "/" +
                       std::to_string(tuned.object_spec(id).q_w),
                   TextTable::fmt(predicted[i], 4), TextTable::fmt(a_tuned, 4),
                   TextTable::fmt(a_uniform, 4),
                   TextTable::pct(a_tuned - a_uniform, 1)});
  }
  table.print(std::cout);
  std::cout << "\nworkload-weighted availability gain over one-size-fits-all "
               "majority: "
            << TextTable::pct(weighted_gain, 1)
            << "\n(one measurement pass serves every object — the "
               "distribution is a network\nproperty; only step 4 of Figure 1 "
               "is per-object)\n";
  return 0;
}
