// DESIGN.md WC54 — §5.4's write-constraint walk-through on Topology 2.
//
// The paper's worked example (alpha = .75): the unconstrained optimum sits
// at q_r = 1 with A ~ 72%, but then q_w = T and writes almost never
// succeed. Requiring a write availability of at least A_w = 20% forces
// q_r >= 28 (in the paper's chord placement) and the constrained optimum
// lands there with A ~ 50%. This bench regenerates that table for a
// ladder of A_w floors, and also reports the weighted-objective variant.

#include <iostream>

#include "common.hpp"
#include "core/optimize.hpp"
#include "net/builders.hpp"
#include "report/table.hpp"

int main(int argc, char** argv) {
  using quora::core::AvailabilityCurve;
  using quora::core::OptResult;
  using quora::report::TextTable;

  const quora::bench::RunScale scale = quora::bench::parse_args(argc, argv);
  const quora::net::Topology topo = quora::net::make_ring_with_chords(101, 2);

  std::cout << "== Write-constrained optimal quorums (paper 5.4, Topology 2) ==\n";
  const auto curves = quora::bench::run_figure(topo, "Topology 2 curves", scale);
  const AvailabilityCurve curve = curves.pooled_curve();
  constexpr double kAlpha = 0.75;

  const OptResult unconstrained = quora::core::optimize_exhaustive(curve, kAlpha);
  std::cout << "alpha = " << kAlpha << ": unconstrained optimum q_r="
            << unconstrained.q_r() << " q_w=" << unconstrained.q_w()
            << "  A=" << TextTable::fmt(unconstrained.value, 4)
            << "  (write availability there: "
            << TextTable::fmt(curve.write_availability(unconstrained.q_r()), 4)
            << ")\n\n";

  TextTable table({"A_w floor", "min feasible q_r", "optimal q_r", "q_w",
                   "A(0.75, q_r)", "write avail", "cost vs unconstrained"});
  for (const double floor : {0.05, 0.10, 0.20, 0.30, 0.40, 0.60}) {
    const auto q_lo = quora::core::min_feasible_q_r(curve, floor);
    const auto best = quora::core::optimize_write_constrained(curve, kAlpha, floor);
    if (!best) {
      table.add_row({TextTable::pct(floor, 0), "-", "infeasible", "-", "-", "-", "-"});
      continue;
    }
    table.add_row({TextTable::pct(floor, 0), std::to_string(*q_lo),
                   std::to_string(best->q_r()), std::to_string(best->q_w()),
                   TextTable::fmt(best->value, 4),
                   TextTable::fmt(curve.write_availability(best->q_r()), 4),
                   TextTable::fmt(unconstrained.value - best->value, 4)});
  }
  table.print(std::cout);

  std::cout << "\nWeighted-objective variant (the paper's first, rejected "
               "technique):\n";
  TextTable wtable({"omega", "optimal q_r", "q_w", "A(0.75, q_r)", "write avail"});
  for (const double omega : {0.0, 0.5, 1.0, 2.0, 4.0, 8.0}) {
    const OptResult best = quora::core::optimize_weighted(curve, kAlpha, omega);
    wtable.add_row({TextTable::fmt(omega, 1), std::to_string(best.q_r()),
                    std::to_string(best.q_w()),
                    TextTable::fmt(curve.availability(kAlpha, best.q_r()), 4),
                    TextTable::fmt(curve.write_availability(best.q_r()), 4)});
  }
  wtable.print(std::cout);
  std::cout << "(no principled omega exists — §5.4 prefers the A_w floor)\n";
  return 0;
}
