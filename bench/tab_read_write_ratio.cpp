// DESIGN.md RW55 — §5.5's read-write-ratio study: across all topologies
// and alphas, compare the optimal assignment against the two classical
// endpoints — majority consensus (q_r = floor(T/2), the "no read/write
// distinction" regime all prior work studied) and read-one/write-all.
//
// The paper's finding: majority is optimal for low read rates and rich
// topologies (where earlier write-only results carry over), but is
// frequently the *worst* assignment elsewhere.

#include <iostream>
#include <vector>

#include "common.hpp"
#include "core/optimize.hpp"
#include "net/builders.hpp"
#include "report/table.hpp"

int main(int argc, char** argv) {
  using quora::core::AvailabilityCurve;
  using quora::core::OptResult;
  using quora::report::TextTable;

  quora::bench::RunScale scale = quora::bench::parse_args(argc, argv);
  const std::vector<std::uint32_t> chord_counts{0, 1, 2, 4, 16, 256};

  std::cout << "== Effect of the read-write ratio (paper 5.5) ==\n\n";
  TextTable table({"topology", "alpha", "opt q_r", "A(opt)", "A(majority)",
                   "A(ROWA)", "majority optimal?", "majority worst?"});

  int majority_optimal = 0;
  int majority_worst = 0;
  int cells = 0;

  for (const std::uint32_t chords : chord_counts) {
    const quora::net::Topology topo = quora::net::make_ring_with_chords(101, chords);
    const auto curves = quora::metrics::measure_curves(
        topo, quora::bench::to_config(scale), quora::bench::to_policy(scale));
    const AvailabilityCurve curve = curves.pooled_curve();
    const quora::net::Vote majority_q = curve.max_read_quorum();

    for (const double alpha : curves.alphas) {
      const OptResult best = quora::core::optimize_exhaustive(curve, alpha);
      const double a_majority = curve.availability(alpha, majority_q);
      const double a_rowa = curve.availability(alpha, 1);

      double worst = a_majority;
      for (quora::net::Vote q = 1; q <= majority_q; ++q) {
        worst = std::min(worst, curve.availability(alpha, q));
      }
      // Value-based comparisons (within the measurement CI): plateaus on
      // dense topologies make argmax identity meaningless.
      const bool is_opt = a_majority >= best.value - curves.max_half_width;
      const bool is_worst = a_majority <= worst + curves.max_half_width;
      majority_optimal += is_opt;
      majority_worst += is_worst;
      ++cells;

      table.add_row({"topology-" + std::to_string(chords), TextTable::fmt(alpha, 2),
                     std::to_string(best.q_r()), TextTable::fmt(best.value, 4),
                     TextTable::fmt(a_majority, 4), TextTable::fmt(a_rowa, 4),
                     is_opt ? "yes" : "no", is_worst ? "yes" : "no"});
    }
    table.add_separator();
  }
  table.print(std::cout);
  std::cout << "\nmajority-optimal cells: " << majority_optimal << "/" << cells
            << "   majority-worst cells: " << majority_worst << "/" << cells
            << "\n(paper: \"one-half of the curves have maximum at "
               "q_r=floor(T/2)\"; \"frequently ... yields the lowest "
               "availability\")\n";
  return 0;
}
