// Figure 6: Topology 16 (ring + 16 chords) — availability vs q_r for alpha in {0, .25, .50, .75, 1}
// on the paper's 101-site topology with 16 chords (DESIGN.md FIG6).

#include "common.hpp"
#include "net/builders.hpp"

int main(int argc, char** argv) {
  const quora::bench::RunScale scale = quora::bench::parse_args(argc, argv);
  const quora::net::Topology topo = quora::net::make_ring_with_chords(101, 16);
  quora::bench::run_figure(topo, "Figure 6: Topology 16 (ring + 16 chords)", scale);
  return 0;
}
