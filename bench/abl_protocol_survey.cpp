// The dynamic-protocol survey the paper's related-work section sketches
// (§1, §2), run head-to-head on one event stream in a failure-heavy
// regime: adapt the QUORUMS (QR + estimator agent, this paper), adapt the
// ELECTORATE (Jajodia-Mutchler dynamic voting, refs [12,13]), or adapt
// the VOTES (Barbara/Garcia-Molina/Spauster overthrow, refs [4,5]) —
// against the static majority and read-one/write-all baselines.
//
// Reads and writes are distinguished only by the quorum-based protocols;
// dynamic voting and vote reassignment treat every access as an update
// (their published setting), which is exactly the gap §5.5 highlights.

#include <iostream>
#include <vector>

#include "common.hpp"
#include "core/reassign.hpp"
#include "dyn/adaptive.hpp"
#include "dyn/dynamic_votes.hpp"
#include "dyn/dynamic_voting.hpp"
#include "metrics/collectors.hpp"
#include "net/builders.hpp"
#include "quorum/protocols.hpp"
#include "report/table.hpp"
#include "sim/simulator.hpp"

namespace {

using quora::metrics::ProtocolMeter;
using quora::report::TextTable;

/// Attempts an overthrow install after every failure/recovery — the
/// eager reassignment policy of the vote-reassignment references.
class OverthrowAgent : public quora::sim::NetworkObserver {
public:
  explicit OverthrowAgent(quora::dyn::DynamicVotes& dv) : dv_(&dv) {}

  void on_network_change(const quora::sim::Simulator& sim, quora::sim::EventKind,
                         std::uint32_t index) override {
    // Reassign from some up site; the event's component is the natural
    // trigger point, but any majority-holding component may act.
    const auto origin = static_cast<quora::net::SiteId>(
        index % sim.topology().site_count());
    if (!sim.network().is_site_up(origin)) return;
    installs_ += dv_->try_install(sim.tracker(), origin,
                                  dv_->overthrow_votes(sim.tracker(), origin));
  }

  std::uint64_t installs() const noexcept { return installs_; }

private:
  quora::dyn::DynamicVotes* dv_;
  std::uint64_t installs_ = 0;
};

} // namespace

int main(int argc, char** argv) {
  const quora::bench::RunScale scale = quora::bench::parse_args(argc, argv);
  const quora::net::Topology topo = quora::net::make_ring_with_chords(101, 16);
  const quora::net::Vote total = topo.total_votes();

  quora::sim::SimConfig config = quora::bench::to_config(scale);
  config.reliability = 0.90;  // failure-heavy: where dynamic protocols earn
                              // their complexity

  const quora::quorum::QuorumConsensus majority(topo,
                                                quora::quorum::majority(total));
  const quora::quorum::QuorumConsensus rowa(
      topo, quora::quorum::read_one_write_all(total));
  quora::core::QuorumReassignment qr(topo, quora::quorum::majority(total));
  quora::dyn::DynamicVoting jm(topo);
  quora::dyn::DynamicVotes votes(topo);

  ProtocolMeter m_majority(quora::metrics::static_decider(majority));
  ProtocolMeter m_rowa(quora::metrics::static_decider(rowa));
  ProtocolMeter m_qr([&](const quora::sim::Simulator& sim,
                         const quora::sim::AccessEvent& ev) {
    const auto type = ev.is_read ? quora::quorum::AccessType::kRead
                                 : quora::quorum::AccessType::kWrite;
    return qr.request(sim.tracker(), ev.site, type).granted;
  });
  ProtocolMeter m_jm([&](const quora::sim::Simulator& sim,
                         const quora::sim::AccessEvent& ev) {
    return jm.attempt_update(sim.tracker(), ev.site);
  });
  ProtocolMeter m_votes([&](const quora::sim::Simulator& sim,
                            const quora::sim::AccessEvent& ev) {
    return votes.request(sim.tracker(), ev.site).granted;
  });

  quora::dyn::AdaptiveReassigner::Options qr_opts;
  qr_opts.min_write_availability = 0.15;
  quora::dyn::AdaptiveReassigner qr_agent(topo, qr, qr_opts);
  OverthrowAgent vote_agent(votes);

  quora::sim::AccessSpec spec;
  spec.alpha = 0.6;
  quora::sim::Simulator sim(topo, config, spec, scale.seed);
  sim.run_accesses(config.warmup_accesses);
  sim.add_access_observer(&m_majority);
  sim.add_access_observer(&m_rowa);
  sim.add_access_observer(&m_qr);
  sim.add_access_observer(&m_jm);
  sim.add_access_observer(&m_votes);
  sim.add_access_observer(&qr_agent);
  sim.add_network_observer(&vote_agent);
  sim.run_accesses(config.accesses_per_batch * 2);

  std::cout << "== Dynamic-protocol survey (topology-16, reliability .90, "
               "alpha=.6) ==\n\n";
  TextTable table({"protocol", "adapts", "availability", "A(read)", "A(write)",
                   "adaptations"});
  const auto row = [&](const char* name, const char* adapts,
                       const ProtocolMeter& m, const std::string& adaptations) {
    table.add_row({name, adapts, TextTable::fmt(m.availability(), 4),
                   TextTable::fmt(m.read_availability(), 4),
                   TextTable::fmt(m.write_availability(), 4), adaptations});
  };
  row("static majority", "-", m_majority, "-");
  row("read-one/write-all", "-", m_rowa, "-");
  row("QR + estimator (this paper)", "quorums", m_qr,
      std::to_string(qr_agent.installs()));
  row("dynamic voting (refs 12,13)", "electorate", m_jm,
      std::to_string(jm.committed_updates()) + " commits");
  row("vote reassignment (refs 4,5)", "votes", m_votes,
      std::to_string(vote_agent.installs()));
  table.print(std::cout);

  std::cout << "\n(All protocols observe the same failures and the same "
               "access stream. ROWA\ntops raw availability at this read "
               "rate by abandoning writes entirely; the QR\nagent lands "
               "between ROWA and majority, trading read availability for a\n"
               "nonzero write rate — its 15% floor is enforced on the "
               "*estimated* curve, and\nin this harsh regime the estimate "
               "overshoots the realized write rate. The\nelectorate/vote "
               "adapters keep writes healthiest but cannot relax reads\n"
               "separately at all — the read-write distinction this paper "
               "is about.)\n";
  return 0;
}
