// DESIGN.md DYNQ — the dynamic quorum reassignment story of §2.2/§4.3:
// under a workload whose read-rate alternates between read-heavy and
// write-heavy phases, compare
//
//   static majority        (q_r = q_w = 51, strict Thomas majority)
//   static read-one/write-all
//   static optimum for the *average* alpha (the best any off-line static
//                           assignment could do without temporal knowledge)
//   QR + adaptive agent     (on-line estimation -> Figure-1 optimizer ->
//                           version-numbered installs)
//   dynamic voting          (Jajodia-Mutchler baseline: adapts the
//                           electorate, not the quorums; no r/w distinction)
//
// All protocols are metered on the *same* event stream, so differences are
// purely protocol, not luck. The QR safety invariant (no access granted
// under a superseded assignment) is asserted on every access.

#include <iostream>
#include <vector>

#include "common.hpp"
#include "core/optimize.hpp"
#include "core/reassign.hpp"
#include "dyn/adaptive.hpp"
#include "dyn/dynamic_voting.hpp"
#include "metrics/collectors.hpp"
#include "net/builders.hpp"
#include "quorum/protocols.hpp"
#include "report/table.hpp"
#include "sim/simulator.hpp"

namespace {

using quora::metrics::ProtocolMeter;
using quora::report::TextTable;

struct Snapshot {
  std::uint64_t granted = 0;
  std::uint64_t total = 0;
};

Snapshot snap(const ProtocolMeter& meter) {
  return {meter.reads_granted() + meter.writes_granted(),
          meter.reads() + meter.writes()};
}

double phase_avail(const Snapshot& now, const Snapshot& before) {
  const std::uint64_t total = now.total - before.total;
  return total == 0 ? 0.0
                    : static_cast<double>(now.granted - before.granted) /
                          static_cast<double>(total);
}

} // namespace

int main(int argc, char** argv) {
  const quora::bench::RunScale scale = quora::bench::parse_args(argc, argv);
  const quora::net::Topology topo = quora::net::make_ring_with_chords(101, 4);
  const quora::net::Vote total_votes = topo.total_votes();
  quora::sim::SimConfig config = quora::bench::to_config(scale);

  // Pre-measure the topology once to find the best static assignment for
  // the average alpha — the strongest static competitor.
  const double avg_alpha = 0.5;
  quora::metrics::MeasurePolicy pre_policy = quora::bench::to_policy(scale);
  pre_policy.alphas = {avg_alpha};
  pre_policy.batch.min_batches = 3;
  pre_policy.batch.max_batches = 3;
  const auto pre = quora::metrics::measure_curves(topo, config, pre_policy);
  const auto static_best =
      quora::core::optimize_exhaustive(pre.pooled_curve(), avg_alpha);

  // Protocol state.
  const quora::quorum::QuorumConsensus majority(topo,
                                                quora::quorum::majority(total_votes));
  const quora::quorum::QuorumConsensus rowa(
      topo, quora::quorum::read_one_write_all(total_votes));
  const quora::quorum::QuorumConsensus static_avg(topo, static_best.spec);
  quora::core::QuorumReassignment qr_free(topo, quora::quorum::majority(total_votes));
  quora::core::QuorumReassignment qr_safe(topo, quora::quorum::majority(total_votes));
  quora::dyn::DynamicVoting dv(topo);

  // Meters (all observing the same access stream).
  ProtocolMeter m_majority(quora::metrics::static_decider(majority));
  ProtocolMeter m_rowa(quora::metrics::static_decider(rowa));
  ProtocolMeter m_static(quora::metrics::static_decider(static_avg));
  std::uint64_t qr_safety_violations = 0;
  const auto qr_decider = [&](quora::core::QuorumReassignment& qr) {
    return [&](const quora::sim::Simulator& sim, const quora::sim::AccessEvent& ev) {
      const auto type = ev.is_read ? quora::quorum::AccessType::kRead
                                   : quora::quorum::AccessType::kWrite;
      const auto decision = qr.request(sim.tracker(), ev.site, type);
      if (decision.granted &&
          qr.effective(sim.tracker(), ev.site).version != qr.latest_version()) {
        ++qr_safety_violations;  // paper 2.2 safety argument says: impossible
      }
      return decision.granted;
    };
  };
  ProtocolMeter m_qr_free(qr_decider(qr_free));
  ProtocolMeter m_qr_safe(qr_decider(qr_safe));
  ProtocolMeter m_dv([&](const quora::sim::Simulator& sim,
                         const quora::sim::AccessEvent& ev) {
    return dv.attempt_update(sim.tracker(), ev.site);
  });
  // The "free" agent optimizes with no write floor and locks itself into
  // read-one/write-all after the first read-heavy phase (installation is
  // itself a write, and q_w = T makes further installs all but
  // impossible). The "safe" agent keeps write availability >= 20% so it
  // can keep reassigning -- the very enhancement 5.4 argues for.
  quora::dyn::AdaptiveReassigner::Options free_opts;
  free_opts.min_write_availability = 0.0;
  quora::dyn::AdaptiveReassigner::Options safe_opts;
  safe_opts.min_write_availability = 0.20;
  quora::dyn::AdaptiveReassigner agent_free(topo, qr_free, free_opts);
  quora::dyn::AdaptiveReassigner agent_safe(topo, qr_safe, safe_opts);

  quora::sim::AccessSpec spec;
  spec.alpha = 0.9;
  quora::sim::Simulator sim(topo, config, spec, scale.seed);
  sim.run_accesses(config.warmup_accesses);
  sim.add_access_observer(&m_majority);
  sim.add_access_observer(&m_rowa);
  sim.add_access_observer(&m_static);
  sim.add_access_observer(&m_qr_free);
  sim.add_access_observer(&m_qr_safe);
  sim.add_access_observer(&m_dv);
  sim.add_access_observer(&agent_free);  // after the meters: measure, then adapt
  sim.add_access_observer(&agent_safe);

  const std::vector<double> phase_alphas{0.9, 0.1, 0.9, 0.1};
  const std::uint64_t phase_len = config.accesses_per_batch;

  std::cout << "== Dynamic QR vs static assignments under shifting alpha ==\n"
            << "topology-4, phases of " << phase_len << " accesses, alpha = "
            << "{.9, .1, .9, .1}; static-avg assignment: q_r="
            << static_best.q_r() << " q_w=" << static_best.q_w() << "\n\n";

  TextTable table({"phase", "alpha", "majority", "ROWA", "static-avg",
                   "QR free", "QR +floor", "dyn voting", "installs free/safe"});
  std::vector<ProtocolMeter*> meters{&m_majority, &m_rowa, &m_static,
                                     &m_qr_free, &m_qr_safe, &m_dv};
  std::vector<Snapshot> before(meters.size());
  std::uint64_t free_before = 0;
  std::uint64_t safe_before = 0;

  for (std::size_t ph = 0; ph < phase_alphas.size(); ++ph) {
    sim.set_access_alpha(phase_alphas[ph]);
    sim.run_accesses(phase_len);
    std::vector<std::string> row{std::to_string(ph + 1),
                                 TextTable::fmt(phase_alphas[ph], 1)};
    for (std::size_t m = 0; m < meters.size(); ++m) {
      const Snapshot now = snap(*meters[m]);
      row.push_back(TextTable::fmt(phase_avail(now, before[m]), 4));
      before[m] = now;
    }
    row.push_back(std::to_string(agent_free.installs() - free_before) + "/" +
                  std::to_string(agent_safe.installs() - safe_before));
    free_before = agent_free.installs();
    safe_before = agent_safe.installs();
    table.add_row(std::move(row));
  }
  table.add_separator();
  {
    std::vector<std::string> row{"all", "mix"};
    for (ProtocolMeter* m : meters) row.push_back(TextTable::fmt(m->availability(), 4));
    row.push_back(std::to_string(agent_free.installs()) + "/" +
                  std::to_string(agent_safe.installs()));
    table.add_row(std::move(row));
  }
  table.print(std::cout);

  std::cout << "\nQR safety violations (accesses granted under a stale "
               "assignment): "
            << qr_safety_violations << " (must be 0)\n"
            << "dynamic-voting committed updates: " << dv.committed_updates()
            << "\n(QR+floor tracks each phase's optimum; QR with no write "
               "floor installs ROWA once and can never reassign again -- "
               "installation is itself a write. Any static assignment must "
               "lose in at least one phase.)\n";
  return qr_safety_violations == 0 ? 0 : 1;
}
