// DESIGN.md T4949 — the fully-connected 101-site network (Topology 4949).
// The paper omits its figure because the curves are "nearly identical" to
// Topology 256; this bench regenerates the series and quantifies the gap
// against Topology 256 directly.

#include <cmath>
#include <iostream>

#include "common.hpp"
#include "net/builders.hpp"
#include "report/table.hpp"

int main(int argc, char** argv) {
  using quora::report::TextTable;

  const quora::bench::RunScale scale = quora::bench::parse_args(argc, argv);
  const quora::net::Topology full = quora::net::make_fully_connected(101);
  const quora::net::Topology t256 = quora::net::make_ring_with_chords(101, 256);

  const auto curves_full = quora::bench::run_figure(
      full, "Topology 4949 (fully connected: 101 sites, 5050 links)", scale);
  const auto curves_256 =
      quora::bench::run_figure(t256, "Topology 256 (reference)", scale);

  // §5.3's claim: the two topologies produce nearly identical curves.
  double max_gap = 0.0;
  for (std::size_t a = 0; a < curves_full.alphas.size(); ++a) {
    for (std::size_t qi = 0; qi < curves_full.q_values.size(); ++qi) {
      max_gap = std::max(max_gap,
                         std::abs(curves_full.mean[a][qi] - curves_256.mean[a][qi]));
    }
  }
  std::cout << "max |A_4949 - A_256| over the whole (alpha, q_r) grid: "
            << TextTable::fmt(max_gap, 4) << '\n'
            << "paper's claim (\"nearly identical\") holds iff this is small"
               " relative to the CI (~"
            << TextTable::fmt(scale.ci_target, 3) << ")\n";
  return 0;
}
