// The Ahamad & Ammar baseline (paper reference [1]): non-partitionable
// networks (perfect links, fail-stop sites). Their analytic results —
// optima at the extreme quorum values; majority optimal over wide
// parameter ranges — are exactly what the paper's simulation extends to
// fallible links. This bench reproduces those results with our analytic
// machinery, then quantifies how fallible links (the paper's setting)
// change the picture for the same site reliability.

#include <iostream>

#include "common.hpp"
#include "core/component_dist.hpp"
#include "core/optimize.hpp"
#include "core/vote_opt.hpp"
#include "report/table.hpp"

int main(int, char**) {
  using quora::core::AvailabilityCurve;
  using quora::report::TextTable;

  std::cout << "== Ahamad-Ammar model: optimal quorums without partitions ==\n\n";

  TextTable table({"n", "p", "alpha", "opt q_r (AA)", "A (AA)",
                   "opt q_r (links .96)", "A (links .96)"});
  int aa_endpoint = 0;
  int aa_cells = 0;
  for (const std::uint32_t n : {9u, 25u, 101u}) {
    for (const double p : {0.80, 0.96}) {
      const AvailabilityCurve aa(quora::core::ahamad_ammar_site_pdf(n, p));
      const AvailabilityCurve faulty(
          quora::core::fully_connected_site_pdf(n, p, 0.96));
      for (const double alpha : {0.0, 0.25, 0.5, 0.75, 1.0}) {
        const auto best_aa = quora::core::optimize_exhaustive(aa, alpha);
        const auto best_f = quora::core::optimize_exhaustive(faulty, alpha);
        const bool endpoint =
            best_aa.q_r() == 1 || best_aa.q_r() == aa.max_read_quorum() ||
            best_aa.value <= std::max(aa.availability(alpha, 1),
                                      aa.availability(alpha, aa.max_read_quorum())) +
                                 1e-12;
        aa_endpoint += endpoint;
        ++aa_cells;
        table.add_row({std::to_string(n), TextTable::fmt(p, 2),
                       TextTable::fmt(alpha, 2), std::to_string(best_aa.q_r()),
                       TextTable::fmt(best_aa.value, 4),
                       std::to_string(best_f.q_r()),
                       TextTable::fmt(best_f.value, 4)});
      }
      table.add_separator();
    }
  }
  table.print(std::cout);
  std::cout << "\nAhamad-Ammar endpoint-maximum cells: " << aa_endpoint << "/"
            << aa_cells
            << " (their theorem: the extremum is always at an endpoint)\n";

  // Their nine-copy exhaustive setting, reproduced exactly: uniform votes
  // are in fact optimal for uniform reliabilities (checked by searching
  // all vote vectors), and majority is the optimal quorum at alpha = .5.
  std::cout << "\nExhaustive vote+quorum search (their computational limit "
               "was ~9 copies):\n";
  TextTable votes_table({"n", "alpha", "best votes", "q_r/q_w", "availability",
                         "configs"});
  for (const std::uint32_t n : {3u, 5u, 7u}) {
    const std::vector<double> rel(n, 0.9);
    for (const double alpha : {0.25, 0.5, 0.9}) {
      const auto best = quora::core::optimize_vote_assignment(rel, alpha, 2);
      std::string votes;
      for (const auto v : best.votes) votes += std::to_string(v);
      votes_table.add_row({std::to_string(n), TextTable::fmt(alpha, 2), votes,
                           std::to_string(best.spec.q_r) + "/" +
                               std::to_string(best.spec.q_w),
                           TextTable::fmt(best.availability, 4),
                           std::to_string(best.configurations_evaluated)});
    }
  }
  votes_table.print(std::cout);
  return 0;
}
